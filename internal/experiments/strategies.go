package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/campaign"
	"sensorfusion/internal/render"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sim"
)

// StrategyRow is one attacker strategy's expected damage on a fixed
// configuration.
type StrategyRow struct {
	Strategy string
	// Mean is E|S_{N,f}| with this strategy under the given schedule.
	Mean float64
	// Detections counts detector firings (must be zero for all shipped
	// strategies).
	Detections int
}

// CompareStrategies evaluates all shipped attacker strategies on one
// configuration and schedule: the attacker-capability ablation. Each
// strategy is one campaign task (constructed inside the task so stateful
// strategies are never shared across workers). The returned rows are in
// fixed order: null, greedy-up, greedy-two-sided, theorem1-informed,
// optimal.
func CompareStrategies(widths []float64, fa int, kind schedule.Kind, opts Table1Options) ([]StrategyRow, error) {
	o := opts.withDefaults()
	n := len(widths)
	f := (n+1)/2 - 1
	targets, err := attack.ChooseTargets(widths, fa, attack.TargetSmallest, nil)
	if err != nil {
		return nil, err
	}
	makeStrategies := []func() attack.Strategy{
		func() attack.Strategy { return attack.Null{} },
		func() attack.Strategy { return attack.Greedy{} },
		func() attack.Strategy { return attack.Greedy{TwoSided: true} },
		func() attack.Strategy { return attack.NewInformed() },
		func() attack.Strategy { return attack.NewOptimal() },
	}
	return campaign.Map(len(makeStrategies), campaign.Options{Workers: o.Parallel, Seed: o.Seed},
		func(k int, _ *rand.Rand) (StrategyRow, error) {
			strat := makeStrategies[k]()
			sched, err := schedule.ForKind(kind, widths, nil, nil, nil)
			if err != nil {
				return StrategyRow{}, err
			}
			exp, err := sim.ExpectedWidth(sim.Setup{
				Widths: widths, F: f, Targets: targets, Scheduler: sched,
				Strategy: strat, Step: o.AttackerStep,
				MaxExact: o.MaxExact, MCSamples: o.MCSamples,
			}, o.MeasureStep)
			if err != nil {
				return StrategyRow{}, err
			}
			return StrategyRow{
				Strategy:   strat.Name(),
				Mean:       exp.Mean,
				Detections: exp.Detected,
			}, nil
		})
}

// StrategiesReport renders the ablation.
func StrategiesReport(rows []StrategyRow) string {
	var t render.Table
	t.Header = []string{"strategy", "E|S|", "detections"}
	for _, r := range rows {
		t.AddRow(r.Strategy, fmt.Sprintf("%.3f", r.Mean), fmt.Sprintf("%d", r.Detections))
	}
	return t.String()
}
