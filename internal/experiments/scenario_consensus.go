// The consensus scenario suite: Byzantine nodes inside average
// consensus (the paper's probabilistic-fusion baseline), scored against
// the analytic drift law — Metropolis weights are symmetric, so the
// state sum is preserved each round and a persistent bias steers the
// network mean by exactly rounds*bias/n — and against interval fusion's
// soundness on the same measurements, quantifying the contrast the
// paper draws.

package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/consensus"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/results"
	"sensorfusion/internal/verdict"
)

// consensusScenario is one Byzantine-consensus configuration: a
// topology, a Byzantine node count, and a per-round bias.
type consensusScenario struct {
	name     string
	nodes    int
	complete bool // complete graph (shared bus) vs path
	byz      int  // compromised node count (first byz nodes)
	bias     float64
	noise    float64 // half-range of the initial measurement noise
}

func consensusScenarios() []scenarioRunner {
	return []scenarioRunner{
		&consensusScenario{name: "complete n=5 clean", nodes: 5, complete: true, noise: 0.5},
		&consensusScenario{name: "complete n=5 byz=1", nodes: 5, complete: true, byz: 1, bias: 0.4, noise: 0.5},
		&consensusScenario{name: "complete n=4 byz=f", nodes: 4, complete: true, byz: 1, bias: 0.6, noise: 0.5},
		&consensusScenario{name: "path n=7 byz=2", nodes: 7, byz: 2, bias: 0.3, noise: 0.5},
	}
}

func (s *consensusScenario) label() string { return s.name }

func (s *consensusScenario) canon() string {
	return fmt.Sprintf("nodes=%d|complete=%t|byz=%d|bias=%g|noise=%g",
		s.nodes, s.complete, s.byz, s.bias, s.noise)
}

func (s *consensusScenario) cost() float64 { return float64(s.nodes * s.nodes) }

func (s *consensusScenario) run(steps int, rng *rand.Rand) ([]results.Metric, error) {
	g, err := func() (*consensus.Graph, error) {
		if s.complete {
			return consensus.Complete(s.nodes)
		}
		return consensus.Path(s.nodes)
	}()
	if err != nil {
		return nil, err
	}
	p, err := consensus.NewProtocol(g)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s.byz; k++ {
		if err := p.Compromise(k, s.bias); err != nil {
			return nil, err
		}
	}
	truth := rng.Float64()*20 - 10
	initial := make([]float64, s.nodes)
	for k := range initial {
		initial[k] = truth + (rng.Float64()*2-1)*s.noise
	}
	final, err := p.Run(initial, steps)
	if err != nil {
		return nil, err
	}
	shift := consensus.Mean(final) - consensus.Mean(initial)
	expected := float64(steps) * float64(s.byz) * s.bias / float64(s.nodes)

	// Interval fusion over the same initial measurements, with the
	// Byzantine nodes replacing their intervals by the drifted agreement
	// value they steer consensus toward: with byz <= f the fused
	// interval must still contain the truth (the contrast the paper
	// draws with consensus, whose mean provably drifts above).
	f := fusion.SafeFaultBound(s.nodes)
	budgetOK := 0.0
	fusionSound := 0.0
	if s.byz <= f {
		budgetOK = 1
		ivs := make([]interval.Interval, s.nodes)
		for k := range ivs {
			center := initial[k]
			if k < s.byz {
				center = initial[k] + expected + 10*s.noise
			}
			ivs[k] = interval.MustCentered(center, 2*s.noise)
		}
		// One fusion per run, through a Sweeper for the same zero-alloc
		// path the fault scenarios ride; f = SafeFaultBound is always in
		// range, so ok=false can only mean what ErrNoFusion means.
		var sw interval.Sweeper
		fused, ok := sw.FuseWith(ivs, f)
		if !ok {
			return nil, fmt.Errorf("%w: n=%d f=%d", fusion.ErrNoFusion, s.nodes, f)
		}
		if fused.Contains(truth) {
			fusionSound = 1
		}
	}
	complete := 0.0
	if s.complete {
		complete = 1
	}
	return []results.Metric{
		{Key: "nodes", Val: float64(s.nodes)},
		{Key: "byz", Val: float64(s.byz)},
		{Key: "rounds", Val: float64(steps)},
		{Key: "complete", Val: complete},
		{Key: "consensus_shift", Val: shift},
		{Key: "consensus_spread", Val: consensus.Spread(final)},
		{Key: "expected_shift", Val: expected},
		{Key: "budget_ok", Val: budgetOK},
		{Key: "fusion_sound", Val: fusionSound},
	}, nil
}

// consensusCriteria encodes the consensus claims: the network mean
// drifts by exactly the analytic rounds*byz*bias/n (to float rounding),
// a complete graph agrees exactly after each exchange, and interval
// fusion over the same measurements stays sound whenever the Byzantine
// count fits the fusion fault budget — the paper's resilience contrast.
func consensusCriteria() []verdict.Criterion {
	one := func(v float64) bool { return v == 1 }
	return []verdict.Criterion{
		verdict.AtLeast("drift-floor", "consensus_shift", "expected_shift", 1e-6),
		verdict.AtMost("drift-ceil", "consensus_shift", "expected_shift", 1e-6),
		verdict.When("complete", one, verdict.Max("agreement", "consensus_spread", 1e-9)),
		verdict.When("budget_ok", one, verdict.Equals("soundness", "fusion_sound", 1)),
	}
}
