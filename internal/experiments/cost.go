package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The campaign's configurations differ in cost by orders of magnitude:
// the measurement grid a Table I evaluation enumerates is the product
// of every sensor's discretized offset range, so a wide n=5
// configuration costs thousands of times more than a narrow n=3 one.
// Static equal-count sharding therefore produces shards of wildly
// different durations, and the coordinator's only tool against the
// resulting stragglers used to be the deadline kill. This file is the
// cost layer behind the fix: an analytic per-configuration estimate the
// coordinator packs cost-balanced shards from, plus the calibration
// that converts estimates into wall time using the per-shard timings
// the manifest records.

// CostEstimate predicts the relative evaluation cost of one
// configuration in abstract units: the number of measurement-grid
// combinations (the "rounds" an expectation run enumerates) times the
// per-combination work, which scales with the sensor count and the
// attacker's candidate-placement count (bounded by the expectation
// budget). The estimate is a deliberate proxy — it exists to RANK and
// BALANCE configurations, not to predict seconds; FitCostModel converts
// units to time from measured shard durations. It is monotone in every
// width, in the sensor count, and in the attacked-sensor count, and
// depends only on result-bearing options, so identical plans always
// balance identically.
func CostEstimate(cfg Table1Config, opts Table1Options) float64 {
	o := opts.withDefaults()
	combos := 1.0
	for _, w := range cfg.Widths {
		combos *= math.Floor(w/o.MeasureStep) + 1
	}
	// The attacker plans placements for the fa most precise sensors;
	// each candidate grid spans that sensor's width. The inner
	// expectation evaluation per candidate is capped by the MaxExact /
	// MCSamples budget, which is a constant across configurations of one
	// campaign and so only scales the unit.
	widths := append([]float64(nil), cfg.Widths...)
	sort.Float64s(widths)
	fa := cfg.Fa
	if fa > len(widths) {
		fa = len(widths)
	}
	placements := 0.0
	for _, w := range widths[:fa] {
		placements += math.Floor(w/o.AttackerStep) + 1
	}
	return combos * float64(cfg.N()) * (1 + placements)
}

// PlannedCosts estimates the cost of every configuration the options
// would run, aligned with plan()'s configuration order (for an
// unsharded plan, index k is global enumeration index k). The
// coordinator packs cost-balanced shards from the unsharded vector.
func (opts CampaignOptions) PlannedCosts() ([]float64, error) {
	o := opts.Table1Options.withDefaults()
	cfgs, _, err := opts.plan()
	if err != nil {
		return nil, err
	}
	costs := make([]float64, len(cfgs))
	for k, cfg := range cfgs {
		costs[k] = CostEstimate(cfg, o)
	}
	return costs, nil
}

// MeasuredCosts probes the options' cache for every planned
// configuration's measured wall time (the duration recorded when the
// configuration was last actually computed — see MeasuredCost), aligned
// with plan()'s order like PlannedCosts. Unmeasured configurations read
// back as zero; any reports whether at least one measurement exists.
// Without a cache the vector is all zeros.
func (opts CampaignOptions) MeasuredCosts() (measured []time.Duration, any bool, err error) {
	o := opts.Table1Options.withDefaults()
	cfgs, _, err := opts.plan()
	if err != nil {
		return nil, false, err
	}
	measured = make([]time.Duration, len(cfgs))
	if o.Cache == nil {
		return measured, false, nil
	}
	for k, cfg := range cfgs {
		d, ok, err := MeasuredCost(cfg, o)
		if err != nil {
			return nil, false, err
		}
		if ok {
			measured[k] = d
			any = true
		}
	}
	return measured, any, nil
}

// CalibratedCosts closes the cost model's online refinement loop: it
// prefers each configuration's MEASURED wall time over the analytic
// proxy whenever the cache provides one. The analytic units and the
// measurements are put on one scale by FitCostModel over exactly the
// configurations that have both — measured entries are used as-is (in
// nanoseconds), unmeasured ones are converted through the fitted
// nanoseconds-per-unit rate. With no measurements the analytic vector
// is returned unchanged (any consistent unit balances identically);
// re-runs over a warm cache therefore plan shards from real timings,
// and the estimate drift the ROADMAP called out self-corrects as the
// cache fills.
func CalibratedCosts(analytic []float64, measured []time.Duration) []float64 {
	var units []float64
	var elapsed []time.Duration
	for k := range analytic {
		if k < len(measured) && measured[k] > 0 {
			units = append(units, analytic[k])
			elapsed = append(elapsed, measured[k])
		}
	}
	model, ok := FitCostModel(units, elapsed)
	if !ok {
		return analytic
	}
	out := make([]float64, len(analytic))
	for k := range analytic {
		if k < len(measured) && measured[k] > 0 {
			out[k] = float64(measured[k])
			continue
		}
		out[k] = model.NanosPerUnit * analytic[k]
	}
	return out
}

// CostModel converts abstract cost units into wall time. The zero value
// is "uncalibrated" (Valid reports false).
type CostModel struct {
	// NanosPerUnit is the fitted wall-nanoseconds per cost unit.
	NanosPerUnit float64
}

// Valid reports whether the model carries a usable calibration.
func (m CostModel) Valid() bool { return m.NanosPerUnit > 0 }

// Estimate converts units to predicted wall time (zero when
// uncalibrated).
func (m CostModel) Estimate(units float64) time.Duration {
	if !m.Valid() || units <= 0 {
		return 0
	}
	return time.Duration(m.NanosPerUnit * units)
}

// FitCostModel calibrates the unit from measured (cost, wall time)
// pairs: in the coordinator, each completed shard's estimated cost and
// the elapsed_ms its manifest entry recorded; in CalibratedCosts, each
// configuration's analytic estimate and the measured per-configuration
// time the shared cache recorded — the per-config pairs are preferred
// whenever the cache provides them, the shard-level pairs are what a
// cold run has. The fit is the total-time over total-cost ratio, which
// weights big shards more (exactly the ones whose prediction matters
// for straggler avoidance). Pairs with nonpositive cost or time are
// skipped; ok is false when nothing usable remains.
func FitCostModel(units []float64, elapsed []time.Duration) (m CostModel, ok bool) {
	var sumUnits, sumNanos float64
	for k := range units {
		if k >= len(elapsed) {
			break
		}
		if units[k] <= 0 || elapsed[k] <= 0 {
			continue
		}
		sumUnits += units[k]
		sumNanos += float64(elapsed[k])
	}
	if sumUnits <= 0 || sumNanos <= 0 {
		return CostModel{}, false
	}
	rate := sumNanos / sumUnits
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		return CostModel{}, false
	}
	return CostModel{NanosPerUnit: rate}, true
}

// --- Compact index sets --------------------------------------------------

// FormatIndexSet renders a strictly increasing index set in the compact
// range form ParseIndexSet and ParseShard read: "0-5,9,17-20". A
// singleton gets a trailing comma ("5,") so the form can never be
// mistaken for a bare integer (which ParseShard rejects as ambiguous).
// The coordinator manifest stores each cost-balanced shard's index set
// in this form, and exec workers receive it as their -shard argument.
func FormatIndexSet(indices []int) string {
	var b strings.Builder
	for k := 0; k < len(indices); {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		j := k
		for j+1 < len(indices) && indices[j+1] == indices[j]+1 {
			j++
		}
		b.WriteString(strconv.Itoa(indices[k]))
		if j > k {
			b.WriteByte('-')
			b.WriteString(strconv.Itoa(indices[j]))
		}
		k = j + 1
	}
	if len(indices) == 1 {
		b.WriteByte(',')
	}
	return b.String()
}

// ParseIndexSet parses the compact range form produced by
// FormatIndexSet. Indices must come out strictly increasing (so sets
// are canonical and overlaps are caught); a trailing comma is allowed.
func ParseIndexSet(spec string) ([]int, error) {
	var out []int
	last := -1
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		lo, hi := item, item
		if a, b, isRange := strings.Cut(item, "-"); isRange {
			lo, hi = a, b
		}
		start, err1 := strconv.Atoi(strings.TrimSpace(lo))
		end, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || start < 0 || end < start {
			return nil, fmt.Errorf("experiments: bad index range %q in %q", item, spec)
		}
		if start <= last {
			return nil, fmt.Errorf("experiments: index set %q is not strictly increasing at %q", spec, item)
		}
		for i := start; i <= end; i++ {
			out = append(out, i)
		}
		last = end
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty index set %q", spec)
	}
	return out, nil
}
