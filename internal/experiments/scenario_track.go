// The track scenario suite: tracking a bounded-rate drifting truth
// through full communication rounds (bus, schedule, optimal attacker,
// fusion) filtered by the track package's interval tracker, scored for
// raw and tracked soundness, prediction consistency, stealth, and the
// tracker's precision gain (tracked never looser than raw fusion).

package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sim"
	"sensorfusion/internal/track"
	"sensorfusion/internal/verdict"
)

// trackScenario is one tracking-under-attack configuration.
type trackScenario struct {
	name    string
	widths  []float64
	f       int
	targets []int   // attacked sensors (nil = clean)
	drift   float64 // truth rate bound per round = tracker MaxRate
	ascKind bool    // ascending vs descending schedule
}

func trackScenarios() []scenarioRunner {
	return []scenarioRunner{
		&trackScenario{name: "clean asc", widths: []float64{0.4, 0.4, 2, 4}, f: 1, drift: 0.25, ascKind: true},
		&trackScenario{name: "clean desc", widths: []float64{0.4, 0.4, 2, 4}, f: 1, drift: 0.25},
		&trackScenario{name: "attacked asc", widths: []float64{0.4, 0.4, 2, 4}, f: 1, targets: []int{2}, drift: 0.25, ascKind: true},
		&trackScenario{name: "attacked desc", widths: []float64{0.4, 0.4, 2, 4}, f: 1, targets: []int{3}, drift: 0.25},
	}
}

func (s *trackScenario) label() string { return s.name }

func (s *trackScenario) canon() string {
	return fmt.Sprintf("widths=%v|f=%d|targets=%v|drift=%g|asc=%t",
		s.widths, s.f, s.targets, s.drift, s.ascKind)
}

func (s *trackScenario) cost() float64 {
	if len(s.targets) > 0 {
		return 50 * float64(len(s.widths))
	}
	return float64(len(s.widths))
}

func (s *trackScenario) run(steps int, rng *rand.Rand) ([]results.Metric, error) {
	var sched schedule.Scheduler
	var err error
	if s.ascKind {
		sched, err = schedule.NewAscending(s.widths)
	} else {
		sched, err = schedule.NewDescending(s.widths)
	}
	if err != nil {
		return nil, err
	}
	setup := sim.Setup{Widths: s.widths, F: s.f, Scheduler: sched}
	if len(s.targets) > 0 {
		setup.Targets = s.targets
		setup.Strategy = attack.NewOptimal()
		setup.Step = 0.1
		setup.MaxExact = 600
		setup.MCSamples = 80
	}
	sm, err := sim.NewSimulator(setup)
	if err != nil {
		return nil, err
	}
	tr, err := track.New(s.drift)
	if err != nil {
		return nil, err
	}
	truth := rng.Float64()*20 - 10
	correct := make([]interval.Interval, len(s.widths))
	var (
		rawLosses, trackedLosses     int
		inconsistencies, detections  int
		rawWidthSum, trackedWidthSum float64
	)
	for step := 0; step < steps; step++ {
		truth += (rng.Float64()*2 - 1) * s.drift
		for k, w := range s.widths {
			center := truth + (rng.Float64()-0.5)*w
			correct[k] = interval.MustCentered(center, w)
		}
		rr, err := sm.Round(correct)
		if err != nil {
			return nil, err
		}
		if !rr.Fused.Contains(truth) {
			rawLosses++
		}
		if len(rr.Suspects) > 0 {
			detections++
		}
		rawWidthSum += rr.Fused.Width()
		tracked, err := tr.Update(rr.Fused)
		if err != nil {
			// ErrInconsistent resets the track; with the rate bound
			// honored and the attacker inside the budget it cannot
			// happen, which is the consistency claim below.
			inconsistencies++
			continue
		}
		if !tracked.Contains(truth) {
			trackedLosses++
		}
		trackedWidthSum += tracked.Width()
	}
	meanRaw, meanTracked := 0.0, 0.0
	if steps > 0 {
		meanRaw = rawWidthSum / float64(steps)
	}
	if tr.Rounds() > 0 {
		meanTracked = trackedWidthSum / float64(tr.Rounds())
	}
	attacked := 0.0
	if len(s.targets) > 0 {
		attacked = 1
	}
	return []results.Metric{
		{Key: "rounds", Val: float64(steps)},
		{Key: "attacked", Val: attacked},
		{Key: "raw_truth_losses", Val: float64(rawLosses)},
		{Key: "tracked_truth_losses", Val: float64(trackedLosses)},
		{Key: "inconsistencies", Val: float64(inconsistencies)},
		{Key: "detections", Val: float64(detections)},
		{Key: "clamps", Val: float64(tr.Clamps())},
		{Key: "mean_raw_width", Val: meanRaw},
		{Key: "mean_tracked_width", Val: meanTracked},
	}, nil
}

// trackCriteria encodes the tracking claims: raw fusion and the
// filtered track both never lose the truth while the attacker respects
// the budget, the prediction never goes disjoint from fusion (the rate
// bound holds), the optimal attacker stays stealthy, and the track is
// at least as tight as raw fusion on average.
func trackCriteria() []verdict.Criterion {
	return []verdict.Criterion{
		verdict.Zero("soundness-raw", "raw_truth_losses"),
		verdict.Zero("soundness-tracked", "tracked_truth_losses"),
		verdict.Zero("consistency", "inconsistencies"),
		verdict.Zero("stealth", "detections"),
		verdict.AtMost("precision", "mean_tracked_width", "mean_raw_width", 1e-9),
	}
}
