package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/campaign"
	"sensorfusion/internal/render"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sim"
)

// The paper compares Ascending against Descending (and Random in the
// case study). For the small n it considers, the entire space of fixed
// schedules — all n! transmission orders — is enumerable, so we can ask
// a stronger question than the paper does: is Ascending actually the
// best fixed schedule for the system? This file ranks every permutation
// by expected fusion width.

// ScheduleRank is one fixed transmission order and its expected fusion
// width.
type ScheduleRank struct {
	// Order is the slot order (Order[s] = sensor transmitting in slot s).
	Order []int
	// SlotWidths are the interval widths in transmission order, a more
	// readable rendering of Order.
	SlotWidths []float64
	// Mean is E|S_{N,f}| under this order.
	Mean float64
}

// allSchedulesStream is the generator's streaming core: one engine task
// per permutation, evaluated results delivered to emit in the fixed
// enumeration order of permutations(n) — NOT ranked; ranking needs the
// whole stream and belongs to the caller.
func allSchedulesStream(widths []float64, fa int, o Table1Options, emit func(k int, r ScheduleRank) error) error {
	n := len(widths)
	if n == 0 || n > 6 {
		return fmt.Errorf("experiments: n=%d out of range for exhaustive schedules", n)
	}
	f := (n+1)/2 - 1
	if fa < 1 || fa > f {
		return fmt.Errorf("experiments: fa=%d out of range (f=%d)", fa, f)
	}
	targets, err := attack.ChooseTargets(widths, fa, attack.TargetSmallest, nil)
	if err != nil {
		return err
	}
	perms := permutations(n)
	return campaign.StreamBatched(len(perms), o.Batch, o.engineOptions(len(perms)),
		func(k int, _ *rand.Rand) (ScheduleRank, error) {
			perm := perms[k]
			sched, err := schedule.NewFixed(perm)
			if err != nil {
				return ScheduleRank{}, err
			}
			exp, err := sim.ExpectedWidth(sim.Setup{
				Widths: widths, F: f, Targets: targets, Scheduler: sched,
				Strategy: attack.NewOptimal(), Step: o.AttackerStep,
				MaxExact: o.MaxExact, MCSamples: o.MCSamples,
			}, o.MeasureStep)
			if err != nil {
				return ScheduleRank{}, err
			}
			slotW := make([]float64, n)
			for s, idx := range perm {
				slotW[s] = widths[idx]
			}
			return ScheduleRank{Order: perm, SlotWidths: slotW, Mean: exp.Mean}, nil
		}, emit)
}

// AllSchedules evaluates every permutation of the sensors and returns
// the ranking, best (smallest expected width) first. The attacker
// compromises the fa most precise sensors (attacker-favorable ties) and
// plays the expectation-maximizing strategy. Each of the n! permutations
// is one campaign task, so the enumeration spreads across all cores;
// only practical for n <= 5 (n! grows fast and each permutation costs a
// full enumeration).
func AllSchedules(widths []float64, fa int, opts Table1Options) ([]ScheduleRank, error) {
	o := opts.withDefaults()
	var ranks []ScheduleRank
	if err := allSchedulesStream(widths, fa, o, func(_ int, r ScheduleRank) error {
		ranks = append(ranks, r)
		return nil
	}); err != nil {
		return nil, err
	}
	// Stable sort over the deterministic enumeration order keeps tied
	// permutations in a reproducible relative order.
	sort.SliceStable(ranks, func(a, b int) bool { return ranks[a].Mean < ranks[b].Mean })
	return ranks, nil
}

// AllSchedulesRecords streams the exhaustive schedule evaluation as
// typed records into sink, one per permutation in enumeration order
// (unranked — rank the merged stream by the mean metric). The sink is
// not flushed; the caller owns the stream's lifecycle.
func AllSchedulesRecords(widths []float64, fa int, opts Table1Options, sink results.Sink) error {
	o := opts.withDefaults()
	return allSchedulesStream(widths, fa, o, func(k int, r ScheduleRank) error {
		return sink.Write(results.Record{
			Kind:   "allschedules",
			Index:  k,
			Config: fmt.Sprintf("order=%v slots=%v", r.Order, r.SlotWidths),
			Digest: results.Digest(fmt.Sprintf(
				"allschedules|L=%v|fa=%d|order=%v|mstep=%g|astep=%g|maxexact=%d|mc=%d|seed=%d",
				widths, fa, r.Order, o.MeasureStep, o.AttackerStep, o.MaxExact, o.MCSamples, o.Seed)),
			Seed: o.Seed,
			Metrics: []results.Metric{
				{Key: "mean", Val: r.Mean},
			},
		})
	})
}

// permutations enumerates all permutations of 0..n-1 in the fixed order
// produced by swap-based recursion (NOT lexicographic: n=3 yields 012,
// 021, 102, 120, 210, 201). The order is part of the ranking's
// determinism contract: campaign task k always evaluates the same
// permutation.
func permutations(n int) [][]int {
	perm := make([]int, n)
	for k := range perm {
		perm[k] = k
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for j := k; j < n; j++ {
			perm[k], perm[j] = perm[j], perm[k]
			rec(k + 1)
			perm[k], perm[j] = perm[j], perm[k]
		}
	}
	rec(0)
	return out
}

// FindRank locates the first ranking entry whose slot widths match the
// given width sequence, returning its 0-based position and mean.
func FindRank(ranks []ScheduleRank, slotWidths []float64) (pos int, mean float64, ok bool) {
	for p, r := range ranks {
		if len(r.SlotWidths) != len(slotWidths) {
			continue
		}
		same := true
		for k := range slotWidths {
			if r.SlotWidths[k] != slotWidths[k] {
				same = false
				break
			}
		}
		if same {
			return p, r.Mean, true
		}
	}
	return 0, 0, false
}

// AscendingSlotWidths returns the widths sorted ascending — the slot
// profile of the Ascending schedule.
func AscendingSlotWidths(widths []float64) []float64 {
	out := append([]float64(nil), widths...)
	sort.Float64s(out)
	return out
}

// DescendingSlotWidths returns the widths sorted descending.
func DescendingSlotWidths(widths []float64) []float64 {
	out := AscendingSlotWidths(widths)
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out
}

// AllSchedulesReport renders the ranking.
func AllSchedulesReport(ranks []ScheduleRank, top int) string {
	var t render.Table
	t.Header = []string{"rank", "slot widths", "E|S|"}
	for k, r := range ranks {
		if top > 0 && k >= top && k < len(ranks)-1 {
			continue // show head and the single worst row
		}
		t.AddRow(fmt.Sprintf("%d", k+1), fmt.Sprintf("%v", r.SlotWidths), fmt.Sprintf("%.3f", r.Mean))
	}
	return t.String()
}
