package experiments

import (
	"strings"
	"testing"

	"sensorfusion/internal/schedule"
)

func TestDefaultTable1Configs(t *testing.T) {
	cfgs := DefaultTable1Configs()
	if len(cfgs) != 8 {
		t.Fatalf("got %d configs, want 8 (the paper's rows)", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Fa > c.F() {
			t.Errorf("%s: fa=%d exceeds f=%d", c.Name, c.Fa, c.F())
		}
		if c.PaperAsc > c.PaperDesc {
			t.Errorf("%s: paper reports Asc %v > Desc %v, impossible per Section IV-A",
				c.Name, c.PaperAsc, c.PaperDesc)
		}
	}
	// Spot-check the paper's values made it in.
	if cfgs[0].PaperAsc != 10.77 || cfgs[0].PaperDesc != 13.58 {
		t.Fatalf("row 1 paper values = %v/%v", cfgs[0].PaperAsc, cfgs[0].PaperDesc)
	}
	if cfgs[7].Fa != 2 || cfgs[7].N() != 5 || cfgs[7].F() != 2 {
		t.Fatalf("row 8 shape: %+v", cfgs[7])
	}
}

func TestTable1SmallRows(t *testing.T) {
	// The two n=3 rows run quickly at full fidelity; the headline claim
	// is Desc >= Asc with zero detections.
	cfgs := DefaultTable1Configs()[:2]
	rows, err := Table1(cfgs, Table1Options{MeasureStep: 1, AttackerStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Detections != 0 {
			t.Errorf("%s: %d detections (attacker must be stealthy)", r.Config.Name, r.Detections)
		}
		if r.Desc < r.Asc-1e-9 {
			t.Errorf("%s: Desc %.3f < Asc %.3f — schedule ordering violated",
				r.Config.Name, r.Desc, r.Asc)
		}
		if r.Asc < r.NoAttack-1e-9 {
			t.Errorf("%s: attacked Asc %.3f below clean baseline %.3f",
				r.Config.Name, r.Asc, r.NoAttack)
		}
		if r.Combos == 0 {
			t.Errorf("%s: no combinations enumerated", r.Config.Name)
		}
		// Sanity band: expected widths live between the smallest width and
		// the Theorem 2 bound.
		if r.Asc < 1 || r.Desc > 40 {
			t.Errorf("%s: implausible widths asc=%v desc=%v", r.Config.Name, r.Asc, r.Desc)
		}
	}
	// Row 1 has the big width spread; its gap must exceed row 2's
	// (the paper: gaps grow when sizes differ more).
	gap1 := rows[0].Desc - rows[0].Asc
	gap2 := rows[1].Desc - rows[1].Asc
	if gap1 <= gap2 {
		t.Errorf("gap ordering: L={5,11,17} gap %.3f should exceed L={5,11,11} gap %.3f", gap1, gap2)
	}
}

func TestTable1RunRejectsBadConfig(t *testing.T) {
	bad := Table1Config{Name: "bad", Widths: []float64{5, 11, 17}, Fa: 2} // fa > f=1
	if _, err := Table1Run(bad, Table1Options{}); err == nil {
		t.Fatal("fa > f must fail")
	}
}

func TestTable1Report(t *testing.T) {
	rows := []Table1Row{{
		Config: DefaultTable1Configs()[0],
		Asc:    10.5, Desc: 13.0, NoAttack: 10.5, Combos: 1296,
	}}
	out := Table1Report(rows)
	if !strings.Contains(out, "10.50") || !strings.Contains(out, "13.00") {
		t.Fatalf("report missing values:\n%s", out)
	}
	if !strings.Contains(out, "10.77") || !strings.Contains(out, "13.58") {
		t.Fatalf("report missing paper values:\n%s", out)
	}
}

func TestTable2SmallRun(t *testing.T) {
	rows, err := Table2(Table2Options{Steps: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Schedule] = r
		if r.Detections != 0 {
			t.Errorf("%s: %d detections", r.Schedule, r.Detections)
		}
		if r.Rounds != 450 {
			t.Errorf("%s: rounds = %d, want 450", r.Schedule, r.Rounds)
		}
	}
	asc, desc, rnd := byName[schedule.Ascending.String()], byName[schedule.Descending.String()], byName[schedule.Random.String()]
	if asc.UpperPct != 0 || asc.LowerPct != 0 {
		t.Errorf("Ascending violations: %.2f%%/%.2f%% (paper: 0/0)", asc.UpperPct, asc.LowerPct)
	}
	if !(desc.UpperPct > rnd.UpperPct && rnd.UpperPct > 0) {
		t.Errorf("upper ordering: desc %.2f, rnd %.2f", desc.UpperPct, rnd.UpperPct)
	}
	if !(desc.LowerPct > rnd.LowerPct && rnd.LowerPct > 0) {
		t.Errorf("lower ordering: desc %.2f, rnd %.2f", desc.LowerPct, rnd.LowerPct)
	}
}

func TestTable2Report(t *testing.T) {
	rows, err := Table2(Table2Options{Steps: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := Table2Report(rows)
	for _, want := range []string{"More than 10.5 mph", "Less than 9.5 mph", "Ascending", "Descending", "Random", "17.42%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Defaults(t *testing.T) {
	o := Table2Options{}.withDefaults()
	if o.Steps != 1000 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	o1 := Table1Options{}.withDefaults()
	if o1.MeasureStep != 1 || o1.AttackerStep != 1 || o1.MaxExact != 600 || o1.MCSamples != 160 || o1.Parallel < 1 {
		t.Fatalf("table1 defaults = %+v", o1)
	}
}
