package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
)

func TestCompareStrategiesOrdering(t *testing.T) {
	// Descending schedule, attacked precise sensor with full knowledge:
	// the strategy hierarchy must hold — null never beats anyone,
	// optimal is at least as damaging as every heuristic, and nobody
	// gets caught.
	rows, err := CompareStrategies([]float64{5, 11, 17}, 1, schedule.Descending,
		Table1Options{MeasureStep: 1, AttackerStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]StrategyRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		if r.Detections != 0 {
			t.Errorf("%s: detected %d times", r.Strategy, r.Detections)
		}
	}
	null := byName["null"]
	optimal := byName["optimal"]
	for _, r := range rows {
		if r.Mean < null.Mean-1e-9 {
			t.Errorf("%s (%.3f) does worse than sending correct readings (%.3f)?",
				r.Strategy, r.Mean, null.Mean)
		}
		if r.Mean > optimal.Mean+1e-9 {
			t.Errorf("%s (%.3f) beats optimal (%.3f)", r.Strategy, r.Mean, optimal.Mean)
		}
	}
	if optimal.Mean <= null.Mean+1e-9 {
		t.Errorf("optimal (%.3f) gained nothing over null (%.3f)", optimal.Mean, null.Mean)
	}
	// The greedy heuristics should capture a meaningful share of the
	// optimal damage in this full-knowledge setting.
	greedy := byName["greedy-up"]
	if greedy.Mean <= null.Mean+1e-9 {
		t.Errorf("greedy-up (%.3f) gained nothing", greedy.Mean)
	}
}

func TestCompareStrategiesBadInput(t *testing.T) {
	if _, err := CompareStrategies([]float64{5, 11, 17}, 0, schedule.Ascending, Table1Options{}); err == nil {
		t.Fatal("fa=0 must fail")
	}
}

func TestStrategiesReport(t *testing.T) {
	rows := []StrategyRow{{Strategy: "null", Mean: 9.5}, {Strategy: "optimal", Mean: 16.5}}
	out := StrategiesReport(rows)
	if !strings.Contains(out, "null") || !strings.Contains(out, "16.500") {
		t.Fatalf("report:\n%s", out)
	}
}

// TestStrategiesBatchInvariant: the Batch knob reaches the strategy
// ablation generator and must never change its record bytes.
func TestStrategiesBatchInvariant(t *testing.T) {
	widths := []float64{5, 11, 17}
	stream := func(batch int) []byte {
		t.Helper()
		o := Table1Options{
			MeasureStep: 1, AttackerStep: 1,
			MaxExact: 200, MCSamples: 60,
			Parallel: 2, Seed: 5, Batch: batch,
		}
		var buf bytes.Buffer
		if err := CompareStrategiesRecords(widths, 1, schedule.Descending, o, results.NewJSONL(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := stream(0)
	if len(ref) == 0 {
		t.Fatal("empty reference stream")
	}
	for _, batch := range []int{1, 2, 5, 9} {
		if got := stream(batch); !bytes.Equal(got, ref) {
			t.Fatalf("batch=%d changed the strategies stream", batch)
		}
	}
}
