// The faults scenario suite: random transient faults injected into a
// static sensor array (the conclusion's "random faults alongside
// attacks" extension), scored for soundness within the fault budget,
// availability, and the windowed fault model's quiescence on clean runs.

package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/faults"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/results"
	"sensorfusion/internal/verdict"
)

// faultScenario is one fault-injection configuration: n sensors of the
// given widths around a drifting truth, a per-round fault injector, and
// footnote 1's windowed detector.
type faultScenario struct {
	name      string
	widths    []float64
	f         int
	rate      float64 // per-sensor per-round fault probability
	maxShift  float64 // injector displacement bound (widths)
	window    int     // windowed-detector window
	threshold int     // windowed-detector threshold
}

func faultScenarios() []scenarioRunner {
	return []scenarioRunner{
		&faultScenario{name: "clean n=5", widths: []float64{1, 1, 2, 3, 4}, f: 2, rate: 0, maxShift: 2, window: 10, threshold: 2},
		&faultScenario{name: "transient n=5 rate=0.08", widths: []float64{1, 1, 2, 3, 4}, f: 2, rate: 0.08, maxShift: 2, window: 10, threshold: 2},
		&faultScenario{name: "bursty n=7 rate=0.15", widths: []float64{0.5, 1, 1, 2, 2, 3, 4}, f: 3, rate: 0.15, maxShift: 3, window: 8, threshold: 3},
		&faultScenario{name: "harsh n=4 rate=0.25", widths: []float64{1, 2, 3, 4}, f: 1, rate: 0.25, maxShift: 2, window: 6, threshold: 1},
	}
}

func (s *faultScenario) label() string { return s.name }

func (s *faultScenario) canon() string {
	return fmt.Sprintf("widths=%v|f=%d|rate=%g|maxshift=%g|window=%d|threshold=%d",
		s.widths, s.f, s.rate, s.maxShift, s.window, s.threshold)
}

func (s *faultScenario) cost() float64 { return float64(len(s.widths)) }

func (s *faultScenario) run(steps int, rng *rand.Rand) ([]results.Metric, error) {
	n := len(s.widths)
	det, err := faults.NewWindowDetector(n, s.window, s.threshold)
	if err != nil {
		return nil, err
	}
	inj := faults.Injector{Rate: s.rate, MaxShift: s.maxShift}
	// Per-step fusion runs through one reused empty-base Sweeper —
	// bit-identical to fusion.Fuse (pinned by the equivalence and
	// differential tests) without its per-call sort allocations. Fuse's
	// fault-bound validation happens once up front; with a valid bound
	// the only scalar error left is ErrNoFusion, which FuseWith reports
	// as ok=false.
	if n > 0 && (s.f < 0 || s.f >= n) {
		return nil, fmt.Errorf("%w: f=%d with n=%d", fusion.ErrBadFaultBound, s.f, n)
	}
	var sw interval.Sweeper
	truth := rng.Float64()*20 - 10
	correct := make([]interval.Interval, n)
	var (
		injected, budgetRounds, overBudget int
		soundnessViolations, noFusion      int
		detections, deemedRounds           int
		widthSum                           float64
		fusedRounds                        int
	)
	for step := 0; step < steps; step++ {
		truth += rng.Float64()*0.2 - 0.1
		for k, w := range s.widths {
			center := truth + (rng.Float64()-0.5)*w
			correct[k] = interval.MustCentered(center, w)
		}
		ivs, faulted, err := inj.Apply(correct, truth, nil, rng)
		if err != nil {
			return nil, err
		}
		injected += len(faulted)
		within := len(faulted) <= s.f
		if within {
			budgetRounds++
		} else {
			overBudget++
		}
		fused, ok := sw.FuseWith(ivs, s.f)
		if !ok {
			// Within budget the truth is covered by the n-f correct
			// intervals, so fusion must exist; counting the impossible
			// case is the availability claim the verdicts pin to zero.
			if within {
				noFusion++
			}
			det.Reset()
			continue
		}
		fusedRounds++
		widthSum += fused.Width()
		if within && !fused.Contains(truth) {
			soundnessViolations++
		}
		suspects := fusion.Detect(ivs, fused)
		if len(suspects) > 0 {
			detections++
		}
		deemed, err := det.Record(suspects)
		if err != nil {
			return nil, err
		}
		if len(deemed) > 0 {
			deemedRounds++
		}
	}
	meanWidth := 0.0
	if fusedRounds > 0 {
		meanWidth = widthSum / float64(fusedRounds)
	}
	return []results.Metric{
		{Key: "rounds", Val: float64(steps)},
		{Key: "fault_rate", Val: s.rate},
		{Key: "faults_injected", Val: float64(injected)},
		{Key: "budget_rounds", Val: float64(budgetRounds)},
		{Key: "over_budget_rounds", Val: float64(overBudget)},
		{Key: "soundness_violations", Val: float64(soundnessViolations)},
		{Key: "no_fusion_rounds", Val: float64(noFusion)},
		{Key: "detections", Val: float64(detections)},
		{Key: "deemed_rounds", Val: float64(deemedRounds)},
		{Key: "mean_fused_width", Val: meanWidth},
	}, nil
}

// faultCriteria encodes the fault-suite claims: fusion never loses the
// truth while the fault budget holds, fusion always exists within
// budget, and a fault-free system triggers neither the instantaneous
// nor the windowed detector.
func faultCriteria() []verdict.Criterion {
	clean := func(rate float64) bool { return rate == 0 }
	return []verdict.Criterion{
		verdict.Zero("soundness", "soundness_violations"),
		verdict.Zero("availability", "no_fusion_rounds"),
		verdict.When("fault_rate", clean, verdict.Zero("stealth", "detections")),
		verdict.When("fault_rate", clean, verdict.Zero("window-quiet", "deemed_rounds")),
	}
}
