package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestIntraConfigParallelSpeedup pins the engine's intra-configuration
// parallelism: a single Table I configuration is three independent
// engine items (ascending, descending, clean; see table1RunPart), so
// even a one-configuration stream must get faster with workers. The
// serial/parallel wall-clock ratio must clear 1.5x — the two attacked
// parts dominate and overlap, so the ideal ratio approaches 2x.
//
// Timing tests are inherently noisy: we take the best of three runs per
// worker count and skip entirely in -short mode or on machines with
// fewer than four cores, where the overlap cannot express itself.
func TestIntraConfigParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test: skipped in -short mode")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("timing test needs at least 4 cores, have %d", n)
	}

	cfg := Table1Config{Name: "speedup probe", Widths: []float64{3, 3, 3, 9, 9}, Fa: 2}
	opts := func(parallel int) Table1Options {
		// No Cache: every run recomputes, so the two timings measure the
		// same work. Tuning mirrors coarse() but heavier, so the per-part
		// cost dwarfs engine overhead.
		return Table1Options{
			MeasureStep: 1, AttackerStep: 1,
			MaxExact: 300, MCSamples: 80,
			Parallel: parallel, Seed: 17,
		}
	}
	run := func(parallel int) ([]Table1Row, time.Duration) {
		var rows []Table1Row
		start := time.Now()
		err := table1Stream([]Table1Config{cfg}, opts(parallel), func(_ int, row Table1Row) error {
			rows = append(rows, row)
			return nil
		})
		if err != nil {
			t.Fatalf("table1Stream(parallel=%d): %v", parallel, err)
		}
		return rows, time.Since(start)
	}

	const reps = 3
	serialBest, parallelBest := time.Duration(1<<62), time.Duration(1<<62)
	var serialRows, parallelRows []Table1Row
	for i := 0; i < reps; i++ {
		rows, d := run(1)
		serialRows = rows
		if d < serialBest {
			serialBest = d
		}
		rows, d = run(runtime.NumCPU())
		parallelRows = rows
		if d < parallelBest {
			parallelBest = d
		}
	}

	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("rows differ between worker counts:\nserial:   %+v\nparallel: %+v", serialRows, parallelRows)
	}
	ratio := float64(serialBest) / float64(parallelBest)
	t.Logf("serial %v, parallel %v, speedup %.2fx", serialBest, parallelBest, ratio)
	if ratio <= 1.5 {
		t.Errorf("intra-config speedup %.2fx (serial %v / parallel %v), want > 1.5x",
			ratio, serialBest, parallelBest)
	}
}
