package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sensorfusion/internal/results"
)

func TestAllSchedulesRanking(t *testing.T) {
	widths := []float64{5, 11, 17}
	ranks, err := AllSchedules(widths, 1, Table1Options{MeasureStep: 1, AttackerStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 6 {
		t.Fatalf("got %d permutations, want 3! = 6", len(ranks))
	}
	// Ranking is sorted.
	for k := 1; k < len(ranks); k++ {
		if ranks[k].Mean < ranks[k-1].Mean-1e-9 {
			t.Fatalf("ranking not sorted at %d: %v", k, ranks)
		}
	}
	ascPos, ascMean, ok := FindRank(ranks, AscendingSlotWidths(widths))
	if !ok {
		t.Fatal("ascending order missing from ranking")
	}
	descPos, descMean, ok := FindRank(ranks, DescendingSlotWidths(widths))
	if !ok {
		t.Fatal("descending order missing from ranking")
	}
	// The paper's claim, strengthened: Ascending ranks strictly better
	// than Descending among ALL fixed schedules, and is the best one for
	// this configuration.
	if ascMean > descMean-1e-9 {
		t.Fatalf("ascending %.3f not better than descending %.3f", ascMean, descMean)
	}
	if ascPos != 0 {
		t.Errorf("ascending is rank %d (mean %.3f); best is %v (mean %.3f)",
			ascPos+1, ascMean, ranks[0].SlotWidths, ranks[0].Mean)
	}
	if descPos != len(ranks)-1 {
		t.Logf("descending is rank %d of %d (not strictly worst — allowed)", descPos+1, len(ranks))
	}
}

func TestAllSchedulesValidation(t *testing.T) {
	if _, err := AllSchedules(nil, 1, Table1Options{}); err == nil {
		t.Error("empty widths must fail")
	}
	if _, err := AllSchedules(make([]float64, 7), 1, Table1Options{}); err == nil {
		t.Error("n > 6 must fail")
	}
	if _, err := AllSchedules([]float64{1, 2, 3}, 0, Table1Options{}); err == nil {
		t.Error("fa=0 must fail")
	}
	if _, err := AllSchedules([]float64{1, 2, 3}, 2, Table1Options{}); err == nil {
		t.Error("fa > f must fail")
	}
}

func TestSlotWidthHelpers(t *testing.T) {
	w := []float64{11, 5, 17}
	asc := AscendingSlotWidths(w)
	if asc[0] != 5 || asc[2] != 17 {
		t.Fatalf("asc = %v", asc)
	}
	desc := DescendingSlotWidths(w)
	if desc[0] != 17 || desc[2] != 5 {
		t.Fatalf("desc = %v", desc)
	}
	// Input untouched.
	if w[0] != 11 {
		t.Fatal("helper mutated input")
	}
}

func TestAllSchedulesReport(t *testing.T) {
	ranks := []ScheduleRank{
		{SlotWidths: []float64{5, 11, 17}, Mean: 9.6},
		{SlotWidths: []float64{11, 5, 17}, Mean: 10.2},
		{SlotWidths: []float64{17, 11, 5}, Mean: 16.5},
	}
	out := AllSchedulesReport(ranks, 1)
	if !strings.Contains(out, "9.600") || !strings.Contains(out, "16.500") {
		t.Fatalf("report should keep head and worst:\n%s", out)
	}
	if strings.Contains(out, "10.200") {
		t.Fatalf("middle rows should be elided at top=1:\n%s", out)
	}
	full := AllSchedulesReport(ranks, 0)
	if !strings.Contains(full, "10.200") {
		t.Fatalf("top=0 should show everything:\n%s", full)
	}
}

func TestFindRankMissing(t *testing.T) {
	ranks := []ScheduleRank{{SlotWidths: []float64{1, 2}, Mean: 3}}
	if _, _, ok := FindRank(ranks, []float64{2, 1}); ok {
		t.Fatal("mismatched widths should not be found")
	}
	if _, _, ok := FindRank(ranks, []float64{1}); ok {
		t.Fatal("length mismatch should not be found")
	}
}

// TestAllSchedulesBatchInvariant: the Batch knob reaches the
// permutation enumeration and must never change its record bytes, for
// any batch size up to and beyond the n! task count.
func TestAllSchedulesBatchInvariant(t *testing.T) {
	widths := []float64{5, 11, 17}
	stream := func(batch int) []byte {
		t.Helper()
		o := Table1Options{
			MeasureStep: 1, AttackerStep: 1,
			MaxExact: 200, MCSamples: 60,
			Parallel: 3, Seed: 17, Batch: batch,
		}
		var buf bytes.Buffer
		if err := AllSchedulesRecords(widths, 1, o, results.NewJSONL(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := stream(0)
	if len(ref) == 0 {
		t.Fatal("empty reference stream")
	}
	for _, batch := range []int{1, 2, 3, 6, 50} {
		if got := stream(batch); !bytes.Equal(got, ref) {
			t.Fatalf("batch=%d changed the allschedules stream", batch)
		}
	}
}
