package experiments

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sensorfusion/internal/consensus"
	"sensorfusion/internal/faults"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/results"
)

// These tests pin the scenario generators' Sweeper routing to the exact
// output of the per-step fusion.Fuse path it replaced: the reference
// implementations below are the pre-Sweeper run() bodies, and the
// metrics — floats included — must match bit for bit on the same seeds.

// refFaultScenarioRun is faultScenario.run as it stood when every step
// called fusion.Fuse on a freshly allocated slice.
func refFaultScenarioRun(s *faultScenario, steps int, rng *rand.Rand) ([]results.Metric, error) {
	n := len(s.widths)
	det, err := faults.NewWindowDetector(n, s.window, s.threshold)
	if err != nil {
		return nil, err
	}
	inj := faults.Injector{Rate: s.rate, MaxShift: s.maxShift}
	truth := rng.Float64()*20 - 10
	correct := make([]interval.Interval, n)
	var (
		injected, budgetRounds, overBudget int
		soundnessViolations, noFusion      int
		detections, deemedRounds           int
		widthSum                           float64
		fusedRounds                        int
	)
	for step := 0; step < steps; step++ {
		truth += rng.Float64()*0.2 - 0.1
		for k, w := range s.widths {
			center := truth + (rng.Float64()-0.5)*w
			correct[k] = interval.MustCentered(center, w)
		}
		ivs, faulted, err := inj.Apply(correct, truth, nil, rng)
		if err != nil {
			return nil, err
		}
		injected += len(faulted)
		within := len(faulted) <= s.f
		if within {
			budgetRounds++
		} else {
			overBudget++
		}
		fused, err := fusion.Fuse(ivs, s.f)
		switch {
		case errors.Is(err, fusion.ErrNoFusion):
			if within {
				noFusion++
			}
			det.Reset()
			continue
		case err != nil:
			return nil, err
		}
		fusedRounds++
		widthSum += fused.Width()
		if within && !fused.Contains(truth) {
			soundnessViolations++
		}
		suspects := fusion.Detect(ivs, fused)
		if len(suspects) > 0 {
			detections++
		}
		deemed, err := det.Record(suspects)
		if err != nil {
			return nil, err
		}
		if len(deemed) > 0 {
			deemedRounds++
		}
	}
	meanWidth := 0.0
	if fusedRounds > 0 {
		meanWidth = widthSum / float64(fusedRounds)
	}
	return []results.Metric{
		{Key: "rounds", Val: float64(steps)},
		{Key: "fault_rate", Val: s.rate},
		{Key: "faults_injected", Val: float64(injected)},
		{Key: "budget_rounds", Val: float64(budgetRounds)},
		{Key: "over_budget_rounds", Val: float64(overBudget)},
		{Key: "soundness_violations", Val: float64(soundnessViolations)},
		{Key: "no_fusion_rounds", Val: float64(noFusion)},
		{Key: "detections", Val: float64(detections)},
		{Key: "deemed_rounds", Val: float64(deemedRounds)},
		{Key: "mean_fused_width", Val: meanWidth},
	}, nil
}

// refConsensusScenarioRun is consensusScenario.run with the original
// one-shot fusion.Fuse call.
func refConsensusScenarioRun(s *consensusScenario, steps int, rng *rand.Rand) ([]results.Metric, error) {
	g, err := func() (*consensus.Graph, error) {
		if s.complete {
			return consensus.Complete(s.nodes)
		}
		return consensus.Path(s.nodes)
	}()
	if err != nil {
		return nil, err
	}
	p, err := consensus.NewProtocol(g)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s.byz; k++ {
		if err := p.Compromise(k, s.bias); err != nil {
			return nil, err
		}
	}
	truth := rng.Float64()*20 - 10
	initial := make([]float64, s.nodes)
	for k := range initial {
		initial[k] = truth + (rng.Float64()*2-1)*s.noise
	}
	final, err := p.Run(initial, steps)
	if err != nil {
		return nil, err
	}
	shift := consensus.Mean(final) - consensus.Mean(initial)
	expected := float64(steps) * float64(s.byz) * s.bias / float64(s.nodes)
	f := fusion.SafeFaultBound(s.nodes)
	budgetOK := 0.0
	fusionSound := 0.0
	if s.byz <= f {
		budgetOK = 1
		ivs := make([]interval.Interval, s.nodes)
		for k := range ivs {
			center := initial[k]
			if k < s.byz {
				center = initial[k] + expected + 10*s.noise
			}
			ivs[k] = interval.MustCentered(center, 2*s.noise)
		}
		fused, err := fusion.Fuse(ivs, f)
		if err != nil {
			return nil, err
		}
		if fused.Contains(truth) {
			fusionSound = 1
		}
	}
	complete := 0.0
	if s.complete {
		complete = 1
	}
	return []results.Metric{
		{Key: "nodes", Val: float64(s.nodes)},
		{Key: "byz", Val: float64(s.byz)},
		{Key: "rounds", Val: float64(steps)},
		{Key: "complete", Val: complete},
		{Key: "consensus_shift", Val: shift},
		{Key: "consensus_spread", Val: consensus.Spread(final)},
		{Key: "expected_shift", Val: expected},
		{Key: "budget_ok", Val: budgetOK},
		{Key: "fusion_sound", Val: fusionSound},
	}, nil
}

func requireMetricsIdentical(t *testing.T, label string, seed int64, got, want []results.Metric) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s seed=%d: %d metrics, want %d", label, seed, len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("%s seed=%d: metric %d key %q, want %q", label, seed, i, got[i].Key, want[i].Key)
		}
		if math.Float64bits(got[i].Val) != math.Float64bits(want[i].Val) {
			t.Errorf("%s seed=%d: metric %q = %v (bits %#x), want %v (bits %#x)",
				label, seed, got[i].Key, got[i].Val, math.Float64bits(got[i].Val),
				want[i].Val, math.Float64bits(want[i].Val))
		}
	}
}

func TestFaultScenariosByteIdenticalToFuseReference(t *testing.T) {
	const steps = 300
	for _, sr := range faultScenarios() {
		s := sr.(*faultScenario)
		for seed := int64(1); seed <= 5; seed++ {
			got, err := s.run(steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed=%d: run: %v", s.name, seed, err)
			}
			want, err := refFaultScenarioRun(s, steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed=%d: reference: %v", s.name, seed, err)
			}
			requireMetricsIdentical(t, s.name, seed, got, want)
		}
	}
}

func TestConsensusScenariosByteIdenticalToFuseReference(t *testing.T) {
	const steps = 300
	for _, sr := range consensusScenarios() {
		s := sr.(*consensusScenario)
		for seed := int64(1); seed <= 5; seed++ {
			got, err := s.run(steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed=%d: run: %v", s.name, seed, err)
			}
			want, err := refConsensusScenarioRun(s, steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed=%d: reference: %v", s.name, seed, err)
			}
			requireMetricsIdentical(t, s.name, seed, got, want)
		}
	}
}
