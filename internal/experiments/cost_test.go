package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"sensorfusion/internal/results"
)

// TestCostEstimateMonotone: the estimate must rank configurations
// sensibly — wider sensors, more sensors, and more attacked sensors
// all cost more — and be a pure function of result-bearing options.
func TestCostEstimateMonotone(t *testing.T) {
	opts := Table1Options{MeasureStep: 1, AttackerStep: 1}
	base := Table1Config{Widths: []float64{5, 8, 11}, Fa: 1}
	wider := Table1Config{Widths: []float64{5, 8, 20}, Fa: 1}
	more := Table1Config{Widths: []float64{5, 8, 11, 11}, Fa: 1}
	moreFa := Table1Config{Widths: []float64{5, 8, 11, 11, 11}, Fa: 2}
	lessFa := Table1Config{Widths: []float64{5, 8, 11, 11, 11}, Fa: 1}
	c := func(cfg Table1Config) float64 { return CostEstimate(cfg, opts) }
	if !(c(wider) > c(base)) {
		t.Fatalf("wider config not costlier: %g vs %g", c(wider), c(base))
	}
	if !(c(more) > c(base)) {
		t.Fatalf("more sensors not costlier: %g vs %g", c(more), c(base))
	}
	if !(c(moreFa) > c(lessFa)) {
		t.Fatalf("more attacked sensors not costlier: %g vs %g", c(moreFa), c(lessFa))
	}
	if c(base) != CostEstimate(base, opts) {
		t.Fatal("estimate not deterministic")
	}
	// A finer measurement grid multiplies the combination count.
	fine := Table1Options{MeasureStep: 0.5, AttackerStep: 1}
	if !(CostEstimate(base, fine) > c(base)) {
		t.Fatal("finer grid not costlier")
	}
}

// TestCostEstimateSpreadJustifiesBalancing: across the real campaign
// enumeration the cost spread is wide (that spread is the whole reason
// static equal-count shards straggle).
func TestCostEstimateSpreadJustifiesBalancing(t *testing.T) {
	costs, err := (CampaignOptions{}).PlannedCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(EnumerateSweepConfigs()) {
		t.Fatalf("%d costs for %d configs", len(costs), len(EnumerateSweepConfigs()))
	}
	min, max := costs[0], costs[0]
	for _, c := range costs {
		if c <= 0 {
			t.Fatalf("nonpositive cost %g", c)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 100*min {
		t.Fatalf("cost spread only %gx — the campaign should span orders of magnitude (min %g, max %g)",
			max/min, min, max)
	}
}

func TestFormatParseIndexSet(t *testing.T) {
	for _, tc := range []struct {
		indices []int
		want    string
	}{
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{5}, "5,"},
		{[]int{0, 2, 3, 4, 9}, "0,2-4,9"},
		{[]int{7, 8, 10}, "7-8,10"},
	} {
		got := FormatIndexSet(tc.indices)
		if got != tc.want {
			t.Errorf("FormatIndexSet(%v) = %q, want %q", tc.indices, got, tc.want)
		}
		back, err := ParseIndexSet(got)
		if err != nil || !reflect.DeepEqual(back, tc.indices) {
			t.Errorf("round-trip %q -> %v (%v)", got, back, err)
		}
	}
	for _, bad := range []string{"", ",", "3-1", "2,2", "5,3", "-4", "x"} {
		if _, err := ParseIndexSet(bad); err == nil {
			t.Errorf("ParseIndexSet(%q) accepted", bad)
		}
	}
}

func TestFitCostModel(t *testing.T) {
	m, ok := FitCostModel([]float64{100, 300}, []time.Duration{time.Second, 3 * time.Second})
	if !ok || !m.Valid() {
		t.Fatal("fit failed on clean data")
	}
	if got := m.Estimate(200); got != 2*time.Second {
		t.Fatalf("Estimate(200) = %v, want 2s", got)
	}
	if _, ok := FitCostModel(nil, nil); ok {
		t.Fatal("empty fit reported ok")
	}
	if _, ok := FitCostModel([]float64{0, -1}, []time.Duration{time.Second, time.Second}); ok {
		t.Fatal("degenerate fit reported ok")
	}
	if m.Estimate(0) != 0 || (CostModel{}).Estimate(50) != 0 {
		t.Fatal("zero-unit or uncalibrated estimate not zero")
	}
}

// TestExplicitShardPartitionMerges: cutting the campaign into explicit
// cost-ordered index sets (the coordinator's balanced form) merges
// byte-identically to the unsharded stream, exactly like the modular
// form.
func TestExplicitShardPartitionMerges(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:9]
	unsharded := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(2), Configs: cfgs})
	// A deliberately unbalanced explicit partition.
	partition := [][]int{{0, 7, 8}, {2}, {1, 3, 4, 5, 6}}
	var all []results.Record
	for _, indices := range partition {
		shard := streamCampaignJSONL(t, CampaignOptions{
			Table1Options: coarse(2), Configs: cfgs,
			Shard: ShardSpec{Indices: indices},
		})
		recs, err := results.ReadJSONL(bytes.NewReader(shard))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(indices) {
			t.Fatalf("shard %v produced %d records", indices, len(recs))
		}
		for k, rec := range recs {
			if rec.Index != indices[k] {
				t.Fatalf("shard %v record %d has global index %d", indices, k, rec.Index)
			}
		}
		all = append(all, recs...)
	}
	var merged bytes.Buffer
	if err := results.MergeInto(all, results.NewJSONL(&merged), len(cfgs)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), unsharded) {
		t.Fatal("explicit-shard merge differs from unsharded stream")
	}
}

// TestCampaignBatchInvariant: the Batch knob must never change bytes.
func TestCampaignBatchInvariant(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:7]
	ref := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(3), Configs: cfgs})
	for _, batch := range []int{2, 3, 7, 50} {
		got := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(3), Configs: cfgs, Batch: batch})
		if !bytes.Equal(got, ref) {
			t.Fatalf("batch=%d changed the stream:\n%s\n--- vs ---\n%s", batch, got, ref)
		}
	}
}
