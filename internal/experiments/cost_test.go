package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"sensorfusion/internal/cache"
	"sensorfusion/internal/results"
)

// TestCostEstimateMonotone: the estimate must rank configurations
// sensibly — wider sensors, more sensors, and more attacked sensors
// all cost more — and be a pure function of result-bearing options.
func TestCostEstimateMonotone(t *testing.T) {
	opts := Table1Options{MeasureStep: 1, AttackerStep: 1}
	base := Table1Config{Widths: []float64{5, 8, 11}, Fa: 1}
	wider := Table1Config{Widths: []float64{5, 8, 20}, Fa: 1}
	more := Table1Config{Widths: []float64{5, 8, 11, 11}, Fa: 1}
	moreFa := Table1Config{Widths: []float64{5, 8, 11, 11, 11}, Fa: 2}
	lessFa := Table1Config{Widths: []float64{5, 8, 11, 11, 11}, Fa: 1}
	c := func(cfg Table1Config) float64 { return CostEstimate(cfg, opts) }
	if !(c(wider) > c(base)) {
		t.Fatalf("wider config not costlier: %g vs %g", c(wider), c(base))
	}
	if !(c(more) > c(base)) {
		t.Fatalf("more sensors not costlier: %g vs %g", c(more), c(base))
	}
	if !(c(moreFa) > c(lessFa)) {
		t.Fatalf("more attacked sensors not costlier: %g vs %g", c(moreFa), c(lessFa))
	}
	if c(base) != CostEstimate(base, opts) {
		t.Fatal("estimate not deterministic")
	}
	// A finer measurement grid multiplies the combination count.
	fine := Table1Options{MeasureStep: 0.5, AttackerStep: 1}
	if !(CostEstimate(base, fine) > c(base)) {
		t.Fatal("finer grid not costlier")
	}
}

// TestCostEstimateSpreadJustifiesBalancing: across the real campaign
// enumeration the cost spread is wide (that spread is the whole reason
// static equal-count shards straggle).
func TestCostEstimateSpreadJustifiesBalancing(t *testing.T) {
	costs, err := (CampaignOptions{}).PlannedCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(EnumerateSweepConfigs()) {
		t.Fatalf("%d costs for %d configs", len(costs), len(EnumerateSweepConfigs()))
	}
	min, max := costs[0], costs[0]
	for _, c := range costs {
		if c <= 0 {
			t.Fatalf("nonpositive cost %g", c)
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 100*min {
		t.Fatalf("cost spread only %gx — the campaign should span orders of magnitude (min %g, max %g)",
			max/min, min, max)
	}
}

func TestFormatParseIndexSet(t *testing.T) {
	for _, tc := range []struct {
		indices []int
		want    string
	}{
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{5}, "5,"},
		{[]int{0, 2, 3, 4, 9}, "0,2-4,9"},
		{[]int{7, 8, 10}, "7-8,10"},
	} {
		got := FormatIndexSet(tc.indices)
		if got != tc.want {
			t.Errorf("FormatIndexSet(%v) = %q, want %q", tc.indices, got, tc.want)
		}
		back, err := ParseIndexSet(got)
		if err != nil || !reflect.DeepEqual(back, tc.indices) {
			t.Errorf("round-trip %q -> %v (%v)", got, back, err)
		}
	}
	for _, bad := range []string{"", ",", "3-1", "2,2", "5,3", "-4", "x"} {
		if _, err := ParseIndexSet(bad); err == nil {
			t.Errorf("ParseIndexSet(%q) accepted", bad)
		}
	}
}

func TestFitCostModel(t *testing.T) {
	m, ok := FitCostModel([]float64{100, 300}, []time.Duration{time.Second, 3 * time.Second})
	if !ok || !m.Valid() {
		t.Fatal("fit failed on clean data")
	}
	if got := m.Estimate(200); got != 2*time.Second {
		t.Fatalf("Estimate(200) = %v, want 2s", got)
	}
	if _, ok := FitCostModel(nil, nil); ok {
		t.Fatal("empty fit reported ok")
	}
	if _, ok := FitCostModel([]float64{0, -1}, []time.Duration{time.Second, time.Second}); ok {
		t.Fatal("degenerate fit reported ok")
	}
	if m.Estimate(0) != 0 || (CostModel{}).Estimate(50) != 0 {
		t.Fatal("zero-unit or uncalibrated estimate not zero")
	}
}

// TestExplicitShardPartitionMerges: cutting the campaign into explicit
// cost-ordered index sets (the coordinator's balanced form) merges
// byte-identically to the unsharded stream, exactly like the modular
// form.
func TestExplicitShardPartitionMerges(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:9]
	unsharded := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(2), Configs: cfgs})
	// A deliberately unbalanced explicit partition.
	partition := [][]int{{0, 7, 8}, {2}, {1, 3, 4, 5, 6}}
	var all []results.Record
	for _, indices := range partition {
		shard := streamCampaignJSONL(t, CampaignOptions{
			Table1Options: coarse(2), Configs: cfgs,
			Shard: ShardSpec{Indices: indices},
		})
		recs, err := results.ReadJSONL(bytes.NewReader(shard))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(indices) {
			t.Fatalf("shard %v produced %d records", indices, len(recs))
		}
		for k, rec := range recs {
			if rec.Index != indices[k] {
				t.Fatalf("shard %v record %d has global index %d", indices, k, rec.Index)
			}
		}
		all = append(all, recs...)
	}
	var merged bytes.Buffer
	if err := results.MergeInto(all, results.NewJSONL(&merged), len(cfgs)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), unsharded) {
		t.Fatal("explicit-shard merge differs from unsharded stream")
	}
}

// TestCampaignBatchInvariant: the Batch knob must never change bytes.
func TestCampaignBatchInvariant(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:7]
	ref := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(3), Configs: cfgs})
	for _, batch := range []int{2, 3, 7, 50} {
		o := coarse(3)
		o.Batch = batch
		got := streamCampaignJSONL(t, CampaignOptions{Table1Options: o, Configs: cfgs})
		if !bytes.Equal(got, ref) {
			t.Fatalf("batch=%d changed the stream:\n%s\n--- vs ---\n%s", batch, got, ref)
		}
	}
}

// TestMeasuredCostRoundTrip: computing a configuration against a cache
// records its wall time; MeasuredCost reads it back, and a cache hit
// replays the row without refreshing the measurement's identity.
func TestMeasuredCostRoundTrip(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Table1Options{MaxExact: 100, MCSamples: 30, Parallel: 1, Cache: store}
	cfg := Table1Config{Name: "t", Widths: []float64{5, 8, 11}, Fa: 1}
	if _, ok, err := MeasuredCost(cfg, opts); err != nil || ok {
		t.Fatalf("measurement before computation: ok=%v err=%v", ok, err)
	}
	if _, err := Table1Run(cfg, opts); err != nil {
		t.Fatal(err)
	}
	d, ok, err := MeasuredCost(cfg, opts)
	if err != nil || !ok || d <= 0 {
		t.Fatalf("after computation: d=%v ok=%v err=%v", d, ok, err)
	}
	// Without a cache there is nothing to read.
	if _, ok, err := MeasuredCost(cfg, Table1Options{}); err != nil || ok {
		t.Fatalf("cacheless MeasuredCost: ok=%v err=%v", ok, err)
	}
}

// TestCalibratedCostsPrefersMeasured: measured configurations keep
// their real nanoseconds; unmeasured ones are converted through the
// rate fitted from the measured pairs; with no measurements the
// analytic vector passes through unchanged.
func TestCalibratedCostsPrefersMeasured(t *testing.T) {
	analytic := []float64{100, 200, 400}
	measured := []time.Duration{0, 1_000_000, 0} // only index 1 measured: 1ms for 200 units
	got := CalibratedCosts(analytic, measured)
	if got[1] != 1e6 {
		t.Fatalf("measured config cost = %v, want its own nanoseconds 1e6", got[1])
	}
	// Fitted rate: 1e6 ns / 200 units = 5000 ns/unit.
	if got[0] != 100*5000 || got[2] != 400*5000 {
		t.Fatalf("unmeasured configs = %v, want analytic x 5000", got)
	}
	// Ranking monotone with the analytic estimate here, and the vector
	// unchanged when nothing was measured.
	same := CalibratedCosts(analytic, make([]time.Duration, 3))
	if !reflect.DeepEqual(same, analytic) {
		t.Fatalf("no measurements: got %v, want analytic unchanged", same)
	}
}

// TestMeasuredCostsAlignsWithPlan: the measured vector aligns with
// plan() order and flags when at least one measurement exists.
func TestMeasuredCostsAlignsWithPlan(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Table1Config{
		{Name: "a", Widths: []float64{5, 8, 11}, Fa: 1},
		{Name: "b", Widths: []float64{5, 5, 8}, Fa: 1},
	}
	opts := CampaignOptions{
		Table1Options: Table1Options{MaxExact: 100, MCSamples: 30, Parallel: 1, Cache: store},
		Configs:       cfgs,
	}
	measured, any, err := opts.MeasuredCosts()
	if err != nil || any || len(measured) != 2 {
		t.Fatalf("cold cache: measured=%v any=%v err=%v", measured, any, err)
	}
	if _, err := Table1Run(cfgs[1], opts.Table1Options); err != nil {
		t.Fatal(err)
	}
	measured, any, err = opts.MeasuredCosts()
	if err != nil || !any {
		t.Fatalf("warm cache: any=%v err=%v", any, err)
	}
	if measured[0] != 0 || measured[1] <= 0 {
		t.Fatalf("measured vector misaligned with plan order: %v", measured)
	}
}
