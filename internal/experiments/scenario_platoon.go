// The platoon scenario suite: multi-vehicle Section IV-B traffic under
// a per-round attacked sensor, optionally routed through the CAN bus
// codec (canbus.RoundTrip), scored for soundness (no fusion interval
// ever loses the true speed), stealth (the optimal attacker is never
// detected), safety (no collisions), and platoon cohesion.

package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/platoon"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sensor"
	"sensorfusion/internal/verdict"
)

// platoonScenario is one platoon traffic configuration.
type platoonScenario struct {
	name          string
	vehicles      int
	kind          schedule.Kind
	wire          bool // route correct measurements through the CAN codec
	trustedImmune bool // add an IMU and exempt it from the attacked draw
}

func platoonScenarios() []scenarioRunner {
	return []scenarioRunner{
		&platoonScenario{name: "asc 3-veh", vehicles: 3, kind: schedule.Ascending},
		&platoonScenario{name: "desc 3-veh wired", vehicles: 3, kind: schedule.Descending, wire: true},
		&platoonScenario{name: "random 4-veh wired", vehicles: 4, kind: schedule.Random, wire: true},
		&platoonScenario{name: "trusted-immune trustedlast", vehicles: 3, kind: schedule.TrustedLast, trustedImmune: true},
	}
}

func (s *platoonScenario) label() string { return s.name }

func (s *platoonScenario) canon() string {
	return fmt.Sprintf("vehicles=%d|sched=%s|wire=%t|trusted=%t",
		s.vehicles, s.kind, s.wire, s.trustedImmune)
}

// cost reflects the attacker's per-round plan search dominating the
// per-vehicle round work.
func (s *platoonScenario) cost() float64 { return 50 * float64(s.vehicles) }

func (s *platoonScenario) params() platoon.Params {
	p := platoon.NewParams(s.kind)
	p.Vehicles = s.vehicles
	p.Wire = s.wire
	if s.trustedImmune {
		p.Suite = append(p.Suite, sensor.IMU())
		p.TrustedImmune = true
	}
	return p
}

func (s *platoonScenario) run(steps int, rng *rand.Rand) ([]results.Metric, error) {
	r, err := platoon.NewRunner(s.params(), rng)
	if err != nil {
		return nil, err
	}
	res, err := r.Run(steps, false)
	if err != nil {
		return nil, err
	}
	spread := 0.0
	if len(res.FinalSpeeds) > 0 {
		lo, hi := res.FinalSpeeds[0], res.FinalSpeeds[0]
		for _, v := range res.FinalSpeeds[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spread = hi - lo
	}
	wired := 0.0
	if s.wire {
		wired = 1
	}
	return []results.Metric{
		{Key: "rounds", Val: float64(res.Rounds)},
		{Key: "wired", Val: wired},
		{Key: "upper_violations", Val: float64(res.Upper)},
		{Key: "lower_violations", Val: float64(res.Lower)},
		{Key: "preemptions", Val: float64(res.Preemptions)},
		{Key: "detections", Val: float64(res.Detections)},
		{Key: "collisions", Val: float64(res.Collisions)},
		{Key: "truth_losses", Val: float64(res.TruthLosses)},
		{Key: "final_spread", Val: spread},
	}, nil
}

// platoonCriteria encodes the platoon claims: fusion soundness holds at
// every vehicle round even through the lossy wire quantization (which
// only widens intervals outward), the optimal attacker stays stealthy,
// the safety monitor prevents collisions, and the platoon stays
// coherent around the setpoint.
func platoonCriteria() []verdict.Criterion {
	return []verdict.Criterion{
		verdict.Zero("soundness", "truth_losses"),
		verdict.Zero("stealth", "detections"),
		verdict.Zero("safety", "collisions"),
		verdict.Max("cohesion", "final_spread", 2),
	}
}
