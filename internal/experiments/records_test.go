package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"sensorfusion/internal/cache"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCompare checks got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestTable1RecordsGoldenJSONL pins the exact JSONL bytes of the
// streamed Table I records: the shard/merge interchange format is a
// compatibility surface, so any encoding or metric-schema change must
// show up as a diff here.
func TestTable1RecordsGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1Records(DefaultTable1Configs()[:2], coarse(0), results.NewJSONL(&buf)); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table1.jsonl.golden", buf.Bytes())
}

// TestTable1RecordsGoldenCSV pins the CSV rendering of the same stream.
func TestTable1RecordsGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1Records(DefaultTable1Configs()[:2], coarse(0), results.NewCSV(&buf)); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table1.csv.golden", buf.Bytes())
}

// streamCampaignJSONL runs the campaign options into an in-memory JSONL
// buffer and returns the bytes.
func streamCampaignJSONL(t *testing.T, opts CampaignOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	violations, err := StreamCampaign(opts, results.NewJSONL(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("never-smaller violations: %v", violations)
	}
	return buf.Bytes()
}

// TestStreamedCampaignByteIdenticalAcrossWorkerCounts extends the
// engine's worker-count-invariance contract to the streamed sink: the
// JSONL bytes, not just the collected rows, must match the serial run.
func TestStreamedCampaignByteIdenticalAcrossWorkerCounts(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:6]
	ref := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(1), Configs: cfgs})
	for _, workers := range []int{2, runtime.NumCPU()} {
		got := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(workers), Configs: cfgs})
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: streamed JSONL differs from serial:\n%s\n--- vs ---\n%s", workers, got, ref)
		}
	}
}

// TestShardMergeByteIdentical is the acceptance criterion of the shard
// workflow: for any m-way partition, concatenating the shard outputs in
// any order and merging them reproduces the unsharded stream
// byte-for-byte.
func TestShardMergeByteIdentical(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:7] // deliberately not divisible by 2 or 3
	unsharded := streamCampaignJSONL(t, CampaignOptions{Table1Options: coarse(2), Configs: cfgs})
	for _, m := range []int{1, 2, 3} {
		var all []results.Record
		// Feed shards to the merge in reverse order to prove ordering
		// comes from record indices, not file order.
		for i := m - 1; i >= 0; i-- {
			shard := streamCampaignJSONL(t, CampaignOptions{
				Table1Options: coarse(2), Configs: cfgs,
				Shard: ShardSpec{Index: i, Count: m},
			})
			recs, err := results.ReadJSONL(bytes.NewReader(shard))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, recs...)
		}
		var merged bytes.Buffer
		reorder := results.NewReorder(results.NewJSONL(&merged), 0)
		for _, rec := range all {
			if err := reorder.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := reorder.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(merged.Bytes(), unsharded) {
			t.Fatalf("m=%d: merged shards differ from unsharded run:\n%s\n--- vs ---\n%s",
				m, merged.Bytes(), unsharded)
		}
		if len(CheckNeverSmaller(all)) != 0 {
			t.Fatalf("m=%d: merged set reports violations", m)
		}
	}
}

// TestShardPlanPartitions checks the deterministic partition: shards are
// disjoint, cover everything, and keep global indices.
func TestShardPlanPartitions(t *testing.T) {
	cfgs := EnumerateSweepConfigs()[:10]
	const m = 3
	seen := map[int]string{}
	for i := 0; i < m; i++ {
		mine, global, err := (CampaignOptions{Configs: cfgs, Shard: ShardSpec{Index: i, Count: m}}).plan()
		if err != nil {
			t.Fatal(err)
		}
		if len(mine) != len(global) {
			t.Fatalf("shard %d: %d configs, %d indices", i, len(mine), len(global))
		}
		for k, g := range global {
			if g%m != i {
				t.Fatalf("shard %d holds global index %d", i, g)
			}
			if prev, dup := seen[g]; dup {
				t.Fatalf("index %d in two shards (%s)", g, prev)
			}
			seen[g] = mine[k].Name
			if cfgs[g].Name != mine[k].Name {
				t.Fatalf("shard %d position %d: got %s, want %s", i, k, mine[k].Name, cfgs[g].Name)
			}
		}
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("shards cover %d of %d configs", len(seen), len(cfgs))
	}
	if _, _, err := (CampaignOptions{Configs: cfgs, Shard: ShardSpec{Index: 3, Count: 3}}).plan(); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]ShardSpec{
		"":         {},
		"0/4":      {Index: 0, Count: 4},
		"3/4":      {Index: 3, Count: 4},
		"0-5,9":    {Indices: []int{0, 1, 2, 3, 4, 5, 9}},
		"5,":       {Indices: []int{5}},
		"2,4,8-10": {Indices: []int{2, 4, 8, 9, 10}},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"4/4", "-1/4", "1", "a/b", "1/0", "1/-2", "5-3", "3,2", "4,4", "a-b", ","} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
	// The explicit form round-trips through String (the coordinator
	// stores and dispatches shard index sets in that rendering).
	for _, indices := range [][]int{{3}, {0, 1, 2}, {2, 5, 6, 7, 11}} {
		spec := ShardSpec{Indices: indices}
		back, err := ParseShard(spec.String())
		if err != nil || !reflect.DeepEqual(back.Indices, indices) {
			t.Errorf("round-trip %v -> %q -> %v (%v)", indices, spec.String(), back.Indices, err)
		}
	}
}

// TestCampaignCacheWarmRunSkipsSimulation is the cache acceptance
// criterion: a second run over the same configurations performs zero
// simulations (every Get hits) and produces byte-identical records.
func TestCampaignCacheWarmRunSkipsSimulation(t *testing.T) {
	dir := t.TempDir()
	cfgs := EnumerateSweepConfigs()[:5]
	run := func() ([]byte, *cache.Store) {
		store, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts := coarse(2)
		opts.Cache = store
		var buf bytes.Buffer
		if _, err := StreamCampaign(CampaignOptions{Table1Options: opts, Configs: cfgs}, results.NewJSONL(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), store
	}
	// The lookup unit is one PART of a configuration (each of the three
	// independent expectations probes the store before computing), so a
	// cold run misses — and a warm run hits — table1PartCount times per
	// configuration. What must stay invariant: zero hits while cold,
	// zero misses (hence zero simulations) while warm.
	lookups := int64(table1PartCount * len(cfgs))
	cold, s1 := run()
	if s1.Misses() != lookups || s1.Hits() != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", s1.Hits(), s1.Misses(), lookups)
	}
	warm, s2 := run()
	if s2.Misses() != 0 || s2.Hits() != lookups {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0 — simulations ran", s2.Hits(), s2.Misses(), lookups)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm run not byte-identical:\n%s\n--- vs ---\n%s", warm, cold)
	}
}

// TestCacheKeyDiscriminatesOptions: changing any result-bearing knob
// must miss the cache instead of serving a stale row.
func TestCacheKeyDiscriminatesOptions(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTable1Configs()[0]
	base := coarse(1)
	base.Cache = store
	if _, err := Table1Run(cfg, base); err != nil {
		t.Fatal(err)
	}
	changed := base
	changed.MCSamples = base.MCSamples + 1
	if _, err := Table1Run(cfg, changed); err != nil {
		t.Fatal(err)
	}
	if store.Misses() != 2 {
		t.Fatalf("changed options hit the old entry (misses=%d, want 2)", store.Misses())
	}
	// Same options again: hit.
	if _, err := Table1Run(cfg, base); err != nil {
		t.Fatal(err)
	}
	if store.Hits() != 1 {
		t.Fatalf("identical re-run missed (hits=%d)", store.Hits())
	}
}

// TestRecordsAdaptersAgreeWithSliceAPIs: the streaming record form and
// the legacy slice form of each generator must describe the same
// results.
func TestRecordsAdaptersAgreeWithSliceAPIs(t *testing.T) {
	cfgs := DefaultTable1Configs()[:2]
	rows, err := Table1(cfgs, coarse(2))
	if err != nil {
		t.Fatal(err)
	}
	var col results.Collector
	if err := Table1Records(cfgs, coarse(2), &col); err != nil {
		t.Fatal(err)
	}
	if len(col.Records) != len(rows) {
		t.Fatalf("%d records for %d rows", len(col.Records), len(rows))
	}
	for k, rec := range col.Records {
		if rec.Kind != "table1" || rec.Index != k || rec.Config != rows[k].Config.Name {
			t.Fatalf("record %d header mismatch: %+v", k, rec)
		}
		if rec.Digest == "" {
			t.Fatalf("record %d missing digest", k)
		}
		if asc, _ := rec.Metric("asc"); asc != rows[k].Asc {
			t.Fatalf("record %d asc %v != row %v", k, asc, rows[k].Asc)
		}
		if desc, _ := rec.Metric("desc"); desc != rows[k].Desc {
			t.Fatalf("record %d desc %v != row %v", k, desc, rows[k].Desc)
		}
		if combos, _ := rec.Metric("combos"); combos != float64(rows[k].Combos) {
			t.Fatalf("record %d combos %v != row %v", k, combos, rows[k].Combos)
		}
	}

	t2rows, err := Table2(Table2Options{Steps: 80, Seed: 2014, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var t2col results.Collector
	if err := Table2Records(Table2Options{Steps: 80, Seed: 2014, Parallel: 2}, &t2col); err != nil {
		t.Fatal(err)
	}
	for k, rec := range t2col.Records {
		if rec.Config != t2rows[k].Schedule {
			t.Fatalf("table2 record %d: %s != %s", k, rec.Config, t2rows[k].Schedule)
		}
		if up, _ := rec.Metric("upper_pct"); up != t2rows[k].UpperPct {
			t.Fatalf("table2 record %d upper_pct mismatch", k)
		}
	}

	var figCol results.Collector
	figFailures, err := FiguresRecords(2, &figCol)
	if err != nil {
		t.Fatal(err)
	}
	if len(figFailures) != 0 {
		t.Fatalf("figures report failures: %v", figFailures)
	}
	if len(figCol.Records) != 5 {
		t.Fatalf("%d figure records", len(figCol.Records))
	}
	for k, rec := range figCol.Records {
		if ok, _ := rec.Metric("ok"); ok != 1 {
			t.Fatalf("figure record %d reports failure: %+v", k, rec)
		}
	}

	var stratCol results.Collector
	if err := CompareStrategiesRecords([]float64{5, 11, 17}, 1, schedule.Descending, coarse(2), &stratCol); err != nil {
		t.Fatal(err)
	}
	if len(stratCol.Records) != 5 {
		t.Fatalf("%d strategy records", len(stratCol.Records))
	}
	if stratCol.Records[0].Config != "null" || stratCol.Records[4].Config != "optimal" {
		t.Fatalf("strategy order drifted: %s .. %s", stratCol.Records[0].Config, stratCol.Records[4].Config)
	}

	ranks, err := AllSchedules([]float64{5, 11, 17}, 1, coarse(2))
	if err != nil {
		t.Fatal(err)
	}
	var schedCol results.Collector
	if err := AllSchedulesRecords([]float64{5, 11, 17}, 1, coarse(2), &schedCol); err != nil {
		t.Fatal(err)
	}
	if len(schedCol.Records) != len(ranks) {
		t.Fatalf("%d schedule records for %d ranks", len(schedCol.Records), len(ranks))
	}
	// Streamed records are the unranked enumeration: distinct configs,
	// indices 0..n!-1, and the multiset of means matches the ranking.
	configs := map[string]bool{}
	var means []float64
	for k, rec := range schedCol.Records {
		if rec.Index != k {
			t.Fatalf("schedule record %d carries index %d", k, rec.Index)
		}
		configs[rec.Config] = true
		m, ok := rec.Metric("mean")
		if !ok {
			t.Fatalf("schedule record %d missing mean", k)
		}
		means = append(means, m)
	}
	if len(configs) != len(ranks) {
		t.Fatalf("duplicate schedule records")
	}
	sort.Float64s(means)
	for k, r := range ranks {
		if means[k] != r.Mean {
			t.Fatalf("streamed means diverge from ranking at %d: %v vs %v", k, means[k], r.Mean)
		}
	}
}

// TestStealthViolationIsAnError pins the Table1Run satellite fix: a
// detector firing surfaces as an error, and per-schedule combos always
// agree.
func TestStealthViolationIsAnError(t *testing.T) {
	row, err := Table1Run(DefaultTable1Configs()[0], coarse(2))
	if err != nil {
		t.Fatal(err)
	}
	if row.AscCombos != row.DescCombos || row.Combos != row.AscCombos {
		t.Fatalf("per-schedule combos disagree: %+v", row)
	}
	if row.AscDetections != 0 || row.DescDetections != 0 || row.Detections != 0 {
		t.Fatalf("detections leaked into a returned row: %+v", row)
	}
}

// TestCacheHitKeepsCallerConfig: the table1 and campaign generators
// share cache entries for the same (widths, fa, tuning, seed), but
// their Config labels and paper reference values differ — a hit must
// replay only computed results, never the writing generator's identity
// fields.
func TestCacheHitKeepsCallerConfig(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := coarse(1)
	opts.Cache = store

	// Warm through the table1 generator's config (curly-brace label,
	// paper values set).
	paperCfg := DefaultTable1Configs()[0]
	cold, err := Table1Run(paperCfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Hit through the campaign enumeration's config for the same widths
	// and fa (bracket label, zero paper values).
	campaignCfg := Table1Config{
		Name:   "n=3, fa=1, L=[5 11 17]",
		Widths: []float64{5, 11, 17},
		Fa:     1,
	}
	warm, err := Table1Run(campaignCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if store.Hits() != 1 {
		t.Fatalf("expected a shared-entry hit, got hits=%d misses=%d", store.Hits(), store.Misses())
	}
	if !reflect.DeepEqual(warm.Config, campaignCfg) {
		t.Fatalf("cache hit replayed the writer's config: %+v", warm.Config)
	}
	if warm.Asc != cold.Asc || warm.Desc != cold.Desc || warm.Combos != cold.Combos {
		t.Fatalf("computed fields diverged on hit: %+v vs %+v", warm, cold)
	}
}
