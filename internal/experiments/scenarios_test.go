package experiments

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"sensorfusion/internal/cache"
	"sensorfusion/internal/results"
	"sensorfusion/internal/verdict"
)

const scenarioTestSteps = 25

func scenarioJSONL(t *testing.T, opts ScenarioOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := results.NewJSONL(&buf)
	if err := StreamScenarios(opts, sink); err != nil {
		t.Fatalf("StreamScenarios: %v", err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestScenarioVerdictsAllPass is the paper-claim gate: every criterion
// of every suite must PASS (or SKIP when its precondition is vacuous)
// on the default configurations.
func TestScenarioVerdictsAllPass(t *testing.T) {
	vs, err := RunScenarios(ScenarioOptions{Steps: scenarioTestSteps, Seed: 7}, nil)
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if len(vs) == 0 {
		t.Fatal("no verdicts")
	}
	pass, fail, _ := verdict.Counts(vs)
	if fail != 0 {
		t.Fatalf("FAIL verdicts:\n%s", verdict.Report(vs))
	}
	if pass == 0 {
		t.Fatalf("no PASS verdicts:\n%s", verdict.Report(vs))
	}
	kinds := make(map[string]bool)
	for _, v := range vs {
		kinds[v.Suite] = true
	}
	for _, suite := range ScenarioSuites() {
		if !kinds["scenario-"+suite] {
			t.Errorf("no verdicts for suite %q", suite)
		}
	}
}

// TestScenarioDeterminism pins the engine-independence contract: the
// record stream is byte-identical for every worker count and batch
// size.
func TestScenarioDeterminism(t *testing.T) {
	base := ScenarioOptions{Steps: scenarioTestSteps, Seed: 11, Parallel: 1, Batch: 1}
	want := scenarioJSONL(t, base)
	for _, workers := range []int{2, runtime.NumCPU()} {
		for _, batch := range []int{1, 3} {
			opts := base
			opts.Parallel = workers
			opts.Batch = batch
			if got := scenarioJSONL(t, opts); !bytes.Equal(got, want) {
				t.Errorf("parallel=%d batch=%d: records differ from serial run", workers, batch)
			}
		}
	}
}

// TestScenarioSuiteFilterIsSubstream pins that filtering by suite
// neither reindexes nor reseeds: the filtered stream is exactly the
// full stream's records of that kind.
func TestScenarioSuiteFilterIsSubstream(t *testing.T) {
	full := ScenarioOptions{Steps: scenarioTestSteps, Seed: 3}
	var all results.Collector
	if err := StreamScenarios(full, &all); err != nil {
		t.Fatalf("full run: %v", err)
	}
	for _, suite := range ScenarioSuites() {
		opts := full
		opts.Suites = []string{suite}
		var got results.Collector
		if err := StreamScenarios(opts, &got); err != nil {
			t.Fatalf("suite %s: %v", suite, err)
		}
		var want []results.Record
		for _, rec := range all.Records {
			if rec.Kind == "scenario-"+suite {
				want = append(want, rec)
			}
		}
		if len(got.Records) != len(want) {
			t.Fatalf("suite %s: %d records, want %d", suite, len(got.Records), len(want))
		}
		for k := range want {
			if !got.Records[k].Equal(want[k]) {
				t.Errorf("suite %s record %d: filtered run diverged from full run", suite, k)
			}
		}
	}
}

// TestScenarioWarmCache pins resumability: a second run against the
// same cache recomputes nothing and emits byte-identical records.
func TestScenarioWarmCache(t *testing.T) {
	store, err := cache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	opts := ScenarioOptions{Steps: scenarioTestSteps, Seed: 5, Cache: store}
	cold := scenarioJSONL(t, opts)
	puts := store.Puts()
	if puts == 0 {
		t.Fatal("cold run filled no cache entries")
	}
	warm := scenarioJSONL(t, opts)
	if !bytes.Equal(cold, warm) {
		t.Error("warm-cache run diverged from cold run")
	}
	if got := store.Puts(); got != puts {
		t.Errorf("warm run wrote %d new cache entries, want 0", got-puts)
	}
}

// TestScenarioShardMerge pins the shard contract: modular shards keep
// universe indices and reassemble into the unsharded stream.
func TestScenarioShardMerge(t *testing.T) {
	base := ScenarioOptions{Steps: scenarioTestSteps, Seed: 9}
	var full results.Collector
	if err := StreamScenarios(base, &full); err != nil {
		t.Fatal(err)
	}
	merged := make([]results.Record, len(full.Records))
	seen := 0
	for shard := 0; shard < 2; shard++ {
		opts := base
		opts.Shard = ShardSpec{Index: shard, Count: 2}
		var part results.Collector
		if err := StreamScenarios(opts, &part); err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		for _, rec := range part.Records {
			merged[rec.Index] = rec
			seen++
		}
	}
	if seen != len(full.Records) {
		t.Fatalf("shards produced %d records, want %d", seen, len(full.Records))
	}
	for k := range full.Records {
		if !merged[k].Equal(full.Records[k]) {
			t.Errorf("record %d: sharded run diverged from full run", k)
		}
	}
}

// TestScenarioDigests pins the digest list: one per scenario, unique,
// stable under engine knobs, sensitive to result-bearing knobs.
func TestScenarioDigests(t *testing.T) {
	opts := ScenarioOptions{Steps: scenarioTestSteps, Seed: 1}
	ds, err := ScenarioDigests(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no digests")
	}
	uniq := make(map[string]bool)
	for _, d := range ds {
		if uniq[d] {
			t.Fatalf("duplicate digest %s", d)
		}
		uniq[d] = true
	}
	engine := opts
	engine.Parallel = 7
	engine.Batch = 3
	ds2, err := ScenarioDigests(engine)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ds {
		if ds[k] != ds2[k] {
			t.Fatalf("digest %d changed with engine knobs", k)
		}
	}
	seeded := opts
	seeded.Seed = 2
	ds3, err := ScenarioDigests(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if ds3[0] == ds[0] {
		t.Error("digest ignores the seed")
	}
	costs, err := ScenarioCosts(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(ds) {
		t.Fatalf("%d costs for %d digests", len(costs), len(ds))
	}
	for k, c := range costs {
		if c <= 0 {
			t.Errorf("cost %d = %v, want positive", k, c)
		}
	}
}

// TestScenarioUnknownSuite pins the error path.
func TestScenarioUnknownSuite(t *testing.T) {
	err := StreamScenarios(ScenarioOptions{Suites: []string{"bogus"}}, &results.Collector{})
	if err == nil {
		t.Fatal("unknown suite accepted")
	}
}
