package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/campaign"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/render"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sim"
)

// Claim is a programmatically checked property that a figure
// demonstrates. The test suite asserts OK for every claim of every
// figure; the CLI prints them.
type Claim struct {
	Desc   string
	OK     bool
	Detail string
}

// Figure bundles the diagrams and claims reproducing one figure of the
// paper.
type Figure struct {
	ID     string
	Title  string
	Diags  []*render.Diagram
	Claims []Claim
}

// AllClaimsHold reports whether every claim checked out.
func (f Figure) AllClaimsHold() bool {
	for _, c := range f.Claims {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the figure: title, diagrams, claims.
func (f Figure) String() string {
	out := fmt.Sprintf("%s: %s\n\n", f.ID, f.Title)
	for _, d := range f.Diags {
		out += d.String() + "\n"
	}
	for _, c := range f.Claims {
		mark := "ok"
		if !c.OK {
			mark = "FAILED"
		}
		out += fmt.Sprintf("  [%s] %s", mark, c.Desc)
		if c.Detail != "" {
			out += " — " + c.Detail
		}
		out += "\n"
	}
	return out
}

// Figure1 reproduces Fig. 1: Marzullo's fusion interval for three values
// of f over five sensor intervals; uncertainty grows with f.
func Figure1() (Figure, error) {
	ivs := []interval.Interval{
		interval.MustNew(0, 6),
		interval.MustNew(1, 4),
		interval.MustNew(2, 7),
		interval.MustNew(3, 9),
		interval.MustNew(3.5, 5),
	}
	fig := Figure{ID: "Fig1", Title: "Marzullo's fusion interval for f = 0, 1, 2"}
	d := &render.Diagram{Title: "five abstract sensors"}
	for k, iv := range ivs {
		d.Add(fmt.Sprintf("s%d", k+1), iv, false)
	}
	var widths []float64
	for f := 0; f <= 2; f++ {
		s, err := fusion.Fuse(ivs, f)
		if err != nil {
			return Figure{}, err
		}
		d.AddFused(fmt.Sprintf("S(f=%d)", f), s)
		widths = append(widths, s.Width())
	}
	fig.Diags = append(fig.Diags, d)
	grow := widths[0] <= widths[1] && widths[1] <= widths[2] && widths[0] < widths[2]
	fig.Claims = append(fig.Claims, Claim{
		Desc:   "fusion interval grows with f",
		OK:     grow,
		Detail: fmt.Sprintf("|S| = %.2f, %.2f, %.2f for f=0,1,2", widths[0], widths[1], widths[2]),
	})
	inter, _ := interval.IntersectAll(ivs...)
	s0, _ := fusion.Fuse(ivs, 0)
	fig.Claims = append(fig.Claims, Claim{
		Desc: "f=0 fusion is the intersection of all intervals",
		OK:   s0.Equal(inter),
	})
	hull, _ := interval.HullAll(ivs...)
	s4, err := fusion.Fuse(ivs, 4)
	if err != nil {
		return Figure{}, err
	}
	fig.Claims = append(fig.Claims, Claim{
		Desc: "f=n-1 fusion is the convex hull of all intervals",
		OK:   s4.Equal(hull),
	})
	return fig, nil
}

// bestStealthyWidth returns the maximum fusion width achievable by
// placing own intervals of the given widths with full knowledge of the
// other intervals, subject to the stealth constraints — the solution of
// problem (1) by grid search.
func bestStealthyWidth(seen []interval.Interval, delta interval.Interval, ownWidths []float64, n, f int, step float64) float64 {
	ctx := attack.Context{
		N: n, F: f, Sent: len(seen),
		Delta: delta, OwnWidths: ownWidths, Seen: seen, Step: step,
	}
	plan := attack.NewOptimal().Plan(ctx)
	var sw interval.Sweeper
	sw.Preload(seen)
	fused, ok := sw.FuseWith(plan, f)
	if !ok {
		return 0
	}
	return fused.Width()
}

// Figure2 reproduces Fig. 2: with an unseen correct interval remaining,
// no single placement of the attacked interval is optimal — for each of
// two candidate placements there is an s2 that makes the other strictly
// better.
func Figure2() (Figure, error) {
	// n=3, f=1, fa=1. Seen: s1 (width 2). Unseen: s2 (width 4). The
	// attacked interval is wide (6), so the choice between a one-sided
	// attack and a straddling attack matters.
	s1 := interval.MustNew(0, 2)
	delta := interval.MustNew(-1, 5) // attacker's correct reading
	const (
		f    = 1
		wS2  = 4.0
		step = 0.5
	)
	a1 := interval.MustNew(1, 7)  // one-sided attack above ("a1(1)")
	a2 := interval.MustNew(-2, 4) // straddling attack ("a1(2)")

	// The world enumeration below fuses {s1, a, s2} for every (a, s2)
	// pair; s1 is the fixed base, the pair rides the sweeper's reused
	// extra buffers — no per-world slice or sort.
	var sw interval.Sweeper
	sw.Preload([]interval.Interval{s1})
	var pair [2]interval.Interval
	width := func(a, s2 interval.Interval) float64 {
		pair[0], pair[1] = a, s2
		fused, ok := sw.FuseWith(pair[:], f)
		if !ok {
			return 0
		}
		return fused.Width()
	}
	// Enumerate consistent worlds: truth t in s1 ∩ delta, s2 of width 4
	// containing t.
	feas, _ := s1.Intersect(delta)
	var beatsA1, beatsA2 *interval.Interval
	for t := feas.Lo; t <= feas.Hi+1e-9; t += step {
		for c := t - wS2/2; c <= t+wS2/2+1e-9; c += step {
			s2 := interval.MustCentered(c, wS2)
			w1, w2 := width(a1, s2), width(a2, s2)
			if w2 > w1+1e-9 && beatsA1 == nil {
				cp := s2
				beatsA1 = &cp
			}
			if w1 > w2+1e-9 && beatsA2 == nil {
				cp := s2
				beatsA2 = &cp
			}
		}
	}
	fig := Figure{ID: "Fig2", Title: "no optimal attack policy without full knowledge"}
	d := &render.Diagram{Title: "seen s1, two candidate attacked placements"}
	d.Add("s1 (seen)", s1, false)
	d.Add("a1(1)", a1, true)
	d.Add("a1(2)", a2, true)
	if beatsA1 != nil {
		d.Add("s2 vs a1(1)", *beatsA1, false)
	}
	if beatsA2 != nil {
		d.Add("s2 vs a1(2)", *beatsA2, false)
	}
	fig.Diags = append(fig.Diags, d)
	fig.Claims = append(fig.Claims,
		Claim{
			Desc:   "a placement of s2 exists making a1(2) strictly better than a1(1)",
			OK:     beatsA1 != nil,
			Detail: fmt.Sprintf("found %v", deref(beatsA1)),
		},
		Claim{
			Desc:   "a placement of s2 exists making a1(1) strictly better than a1(2)",
			OK:     beatsA2 != nil,
			Detail: fmt.Sprintf("found %v", deref(beatsA2)),
		},
	)
	return fig, nil
}

func deref(p *interval.Interval) string {
	if p == nil {
		return "none"
	}
	return p.String()
}

// Figure3 reproduces the two sufficient conditions of Theorem 1 under
// which an optimal attack policy exists despite unseen intervals.
func Figure3() (Figure, error) {
	fig := Figure{ID: "Fig3", Title: "Theorem 1: optimal attacks with partial knowledge"}

	// Case 1: all seen correct intervals coincide and the unseen interval
	// is small; attacking on both sides is optimal in every world.
	// n=5, f=2, fa=2, attacked widths 6; seen s1=s2=[0,4]; |s3| = 1
	// <= (6 - |S_CS∪∆,0|)/2 = 1 with ∆ = [-0.5, 5] (so S_CS∪∆,0 = [0,4]).
	{
		s1 := interval.MustNew(0, 4)
		s2 := interval.MustNew(0, 4)
		delta := interval.MustNew(-0.5, 5)
		sCS := interval.MustNew(0, 4) // s1 ∩ s2 ∩ delta
		const wOwn, wS3, step = 6.0, 1.0, 0.5
		// Attack on both sides: each attacked interval extends the seen
		// intersection by the slack (|m_min| - |S_CS∪∆,0|)/2 on BOTH
		// sides, so it contains every possible correct interval
		// (each s in CR contains a point of S_CS and |s| <= slack).
		slack := (wOwn - sCS.Width()) / 2
		a1 := interval.Interval{Lo: sCS.Lo - slack, Hi: sCS.Hi + slack} // [-1, 5]
		a2 := a1
		ok := true
		detail := ""
		// The four fixed intervals are preloaded once; each world's s3 is
		// the sweeper's one extra (f=2 is in range for n=5, so ok=false
		// can only mean what ErrNoFusion means).
		var sw interval.Sweeper
		sw.Preload([]interval.Interval{s1, s2, a1, a2})
		var extra [1]interval.Interval
		for t := sCS.Lo; t <= sCS.Hi+1e-9 && ok; t += step {
			for c := t - wS3/2; c <= t+wS3/2+1e-9; c += step {
				s3 := interval.MustCentered(c, wS3)
				extra[0] = s3
				got, fok := sw.FuseWith(extra[:], 2)
				if !fok {
					ok, detail = false, fmt.Sprintf("%v: n=5 f=2", fusion.ErrNoFusion)
					break
				}
				best := bestStealthyWidth([]interval.Interval{s1, s2, s3}, delta, []float64{wOwn, wOwn}, 5, 2, step)
				if got.Width() < best-1e-9 {
					ok = false
					detail = fmt.Sprintf("s3=%v: policy %.2f < full-knowledge optimum %.2f", s3, got.Width(), best)
					break
				}
			}
		}
		d := &render.Diagram{Title: "case 1: coincident seen intervals, both-sides attack"}
		d.Add("s1 (seen)", s1, false)
		d.Add("s2 (seen)", s2, false)
		d.Add("a1", a1, true)
		d.Add("a2", a2, true)
		fig.Diags = append(fig.Diags, d)
		fig.Claims = append(fig.Claims, Claim{
			Desc:   "case 1: both-sides attack matches the full-knowledge optimum in every world",
			OK:     ok,
			Detail: detail,
		})
	}

	// Case 2: the attacked intervals are wide enough to pin both
	// critical points l_{n-f-fa} and u_{n-f-fa}; unseen intervals are too
	// small to move them. n=5, f=2, fa=2; seen s1=[0,5], s2=[1,6];
	// l_1 = 0, u_1 = 6; attacked width 7 >= 6; ∆ = [1.5, 4.5];
	// |s3| = 1 <= min(1.5, 1.5).
	{
		s1 := interval.MustNew(0, 5)
		s2 := interval.MustNew(1, 6)
		delta := interval.MustNew(1.5, 4.5)
		const wOwn, wS3, step = 7.0, 1.0, 0.5
		lCrit, uCrit := 0.0, 6.0
		a := interval.MustNew(-0.5, 6.5) // covers [l_1, u_1]
		want := interval.Interval{Lo: lCrit, Hi: uCrit}
		ok := true
		detail := ""
		var sw interval.Sweeper
		sw.Preload([]interval.Interval{s1, s2, a, a})
		var extra [1]interval.Interval
		for t := delta.Lo; t <= delta.Hi+1e-9 && ok; t += step {
			for c := t - wS3/2; c <= t+wS3/2+1e-9; c += step {
				s3 := interval.MustCentered(c, wS3)
				extra[0] = s3
				got, fok := sw.FuseWith(extra[:], 2)
				if !fok {
					ok, detail = false, fmt.Sprintf("%v: n=5 f=2", fusion.ErrNoFusion)
					break
				}
				if !got.Equal(want) {
					ok = false
					detail = fmt.Sprintf("s3=%v: fused %v, want %v", s3, got, want)
					break
				}
				best := bestStealthyWidth([]interval.Interval{s1, s2, s3}, delta, []float64{wOwn, wOwn}, 5, 2, step)
				if got.Width() < best-1e-9 {
					ok = false
					detail = fmt.Sprintf("s3=%v: policy %.2f < optimum %.2f", s3, got.Width(), best)
					break
				}
			}
		}
		d := &render.Diagram{Title: "case 2: attacked interval pins both critical points"}
		d.Add("s1 (seen)", s1, false)
		d.Add("s2 (seen)", s2, false)
		d.Add("a1 = a2", a, true)
		d.AddFused("S (all worlds)", want)
		fig.Diags = append(fig.Diags, d)
		fig.Claims = append(fig.Claims, Claim{
			Desc:   "case 2: fusion is exactly [l_(n-f-fa), u_(n-f-fa)] in every world and optimal",
			OK:     ok,
			Detail: detail,
		})
	}
	return fig, nil
}

// worstCaseWidthAttacked exhaustively computes the worst-case fusion
// width when the sensors in attacked are adversarial (placed anywhere on
// a grid, detection disregarded — this is the worst-case analysis of
// Section III-B) and the rest are correct (contain the truth at 0).
func worstCaseWidthAttacked(widths []float64, f int, attacked map[int]bool, span, step float64) float64 {
	n := len(widths)
	ivs := make([]interval.Interval, n)
	worst := 0.0
	// One empty-base sweeper scores every leaf of the grid recursion —
	// the Figure4 hot loop — without fusion.Fuse's per-call sorting.
	var sw interval.Sweeper
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if fused, ok := sw.FuseWith(ivs, f); ok {
				if w := fused.Width(); w > worst {
					worst = w
				}
			}
			return
		}
		w := widths[k]
		if attacked[k] {
			for c := -span; c <= span+1e-9; c += step {
				ivs[k] = interval.MustCentered(c, w)
				rec(k + 1)
			}
		} else {
			for c := -w / 2; c <= w/2+1e-9; c += step {
				ivs[k] = interval.MustCentered(c, w)
				rec(k + 1)
			}
		}
	}
	rec(0)
	return worst
}

// Figure4 reproduces Fig. 4: attacking the largest intervals does not
// change the worst case (Theorem 3) while attacking the smallest achieves
// the absolute worst case (Theorem 4).
func Figure4() (Figure, error) {
	widths := []float64{2, 2, 2, 6, 6}
	const f = 2
	const span, step = 8.0, 1.0
	noAttack := worstCaseWidthAttacked(widths, f, nil, span, step)
	largest := worstCaseWidthAttacked(widths, f, map[int]bool{3: true, 4: true}, span, step)
	smallest := worstCaseWidthAttacked(widths, f, map[int]bool{0: true, 1: true}, span, step)
	mixed := worstCaseWidthAttacked(widths, f, map[int]bool{0: true, 4: true}, span, step)

	fig := Figure{ID: "Fig4", Title: "Theorems 3 and 4: which sensors are worth attacking"}
	// Panel (a): a worst-case configuration with the largest two attacked.
	da := &render.Diagram{Title: "(a) attacking the two largest intervals"}
	da.Add("s1 (w=2)", interval.MustNew(-1, 1), false)
	da.Add("s2 (w=2)", interval.MustNew(-1, 1), false)
	da.Add("s3 (w=2)", interval.MustNew(0, 2), false)
	da.Add("a1 (w=6)", interval.MustNew(-4, 2), true)
	da.Add("a2 (w=6)", interval.MustNew(0, 6), true)
	fig.Diags = append(fig.Diags, da)
	db := &render.Diagram{Title: "(b) attacking the two smallest intervals"}
	db.Add("a1 (w=2)", interval.MustNew(-4, -2), true)
	db.Add("a2 (w=2)", interval.MustNew(2, 4), true)
	db.Add("s3 (w=2)", interval.MustNew(-1, 1), false)
	db.Add("s4 (w=6)", interval.MustNew(-3, 3), false)
	db.Add("s5 (w=6)", interval.MustNew(-3, 3), false)
	fig.Diags = append(fig.Diags, db)

	fig.Claims = append(fig.Claims,
		Claim{
			Desc:   "Theorem 3: worst case attacking the fa largest equals the no-attack worst case",
			OK:     approxEq(largest, noAttack, 1e-9),
			Detail: fmt.Sprintf("|S_F| = %.2f vs |S_na| = %.2f", largest, noAttack),
		},
		Claim{
			Desc: "Theorem 4: attacking the fa smallest achieves the absolute worst case",
			OK:   smallest >= largest-1e-9 && smallest >= mixed-1e-9 && smallest >= noAttack-1e-9,
			Detail: fmt.Sprintf("smallest %.2f >= largest %.2f, mixed %.2f, none %.2f",
				smallest, largest, mixed, noAttack),
		},
		Claim{
			Desc:   "attacking precise sensors strictly increases the worst case here",
			OK:     smallest > noAttack+1e-9,
			Detail: fmt.Sprintf("%.2f > %.2f", smallest, noAttack),
		},
	)
	return fig, nil
}

func approxEq(a, b, eps float64) bool {
	d := a - b
	return d <= eps && d >= -eps
}

// Figure5 reproduces Fig. 5: neither schedule is better in all
// situations — on average Ascending wins (panel a), but instances exist
// where Descending produces the smaller fusion interval (panel b).
func Figure5() (Figure, error) {
	fig := Figure{ID: "Fig5", Title: "neither schedule dominates instance-by-instance"}

	// Panel (a): in expectation, Ascending is better for the system.
	widthsA := []float64{2, 8, 8}
	targetsA := []int{0}
	expect := func(widths []float64, targets []int, kind schedule.Kind) (float64, error) {
		sched, err := schedule.ForKind(kind, widths, nil, nil, nil)
		if err != nil {
			return 0, err
		}
		exp, err := sim.ExpectedWidth(sim.Setup{
			Widths: widths, F: 1, Targets: targets, Scheduler: sched,
			Strategy: attack.NewOptimal(), Step: 1, MaxExact: 600, MCSamples: 80,
		}, 1)
		if err != nil {
			return 0, err
		}
		return exp.Mean, nil
	}
	ascMean, err := expect(widthsA, targetsA, schedule.Ascending)
	if err != nil {
		return Figure{}, err
	}
	descMean, err := expect(widthsA, targetsA, schedule.Descending)
	if err != nil {
		return Figure{}, err
	}
	fig.Claims = append(fig.Claims, Claim{
		Desc:   "(a) in expectation Ascending yields the smaller fusion interval",
		OK:     ascMean <= descMean+1e-9,
		Detail: fmt.Sprintf("E|S| Asc %.3f vs Desc %.3f on L={2,8,8}, fa=1", ascMean, descMean),
	})

	// Panel (b): a single measurement combination where Descending beats
	// Ascending. Config L={5,5,5,8}, f=1, attacked sensor 1 (width 5):
	// under Ascending it transmits in slot 1 (passive, forced to send its
	// correct reading); under Descending it transmits in slot 2 — active,
	// having seen the width-8 and one width-5 interval but not the last
	// width-5 — and gambles one-sided (the paper's a_D choice). When the
	// unseen interval lands on the other side the gamble backfires and
	// the fusion interval comes out smaller than the clean one.
	widthsB := []float64{5, 5, 5, 8}
	targetsB := []int{1}
	runKind := func(kind schedule.Kind, correct []interval.Interval) (float64, error) {
		sched, err := schedule.ForKind(kind, widthsB, nil, nil, nil)
		if err != nil {
			return 0, err
		}
		s, err := sim.NewSimulator(sim.Setup{
			Widths: widthsB, F: 1, Targets: targetsB, Scheduler: sched,
			Strategy: attack.Greedy{}, Step: 1, MaxExact: 600, MCSamples: 80,
		})
		if err != nil {
			return 0, err
		}
		res, err := s.Round(correct)
		if err != nil {
			return 0, err
		}
		return res.Fused.Width(), nil
	}
	var found []interval.Interval
	var foundAsc, foundDesc float64
	correct := make([]interval.Interval, 4)
search:
	for o0 := -2.5; o0 <= 2.5; o0 += 1 {
		for o1 := -2.5; o1 <= 2.5; o1 += 1 {
			for o2 := -2.5; o2 <= 2.5; o2 += 1 {
				for o3 := -4.0; o3 <= 4.0; o3 += 1 {
					correct[0] = interval.MustCentered(o0, 5)
					correct[1] = interval.MustCentered(o1, 5)
					correct[2] = interval.MustCentered(o2, 5)
					correct[3] = interval.MustCentered(o3, 8)
					wa, err := runKind(schedule.Ascending, correct)
					if err != nil {
						return Figure{}, err
					}
					wd, err := runKind(schedule.Descending, correct)
					if err != nil {
						return Figure{}, err
					}
					if wd < wa-1e-9 {
						found = append([]interval.Interval(nil), correct...)
						foundAsc, foundDesc = wa, wd
						break search
					}
				}
			}
		}
	}
	claim := Claim{
		Desc: "(b) an instance exists where Descending yields the smaller fusion interval",
		OK:   found != nil,
	}
	if found != nil {
		claim.Detail = fmt.Sprintf("|S| Desc %.2f < Asc %.2f at %v", foundDesc, foundAsc, found)
		d := &render.Diagram{Title: "(b) instance where Descending beats Ascending"}
		for k, iv := range found {
			lbl := fmt.Sprintf("s%d", k+1)
			if k == 0 {
				lbl += " (attacked)"
			}
			d.Add(lbl, iv, k == 0)
		}
		fig.Diags = append(fig.Diags, d)
	}
	fig.Claims = append(fig.Claims, claim)
	return fig, nil
}

// AllFigures generates every figure.
func AllFigures() ([]Figure, error) { return FiguresParallel(0) }

// figuresStream is the generator's streaming core: one engine task per
// figure, delivered to emit in figure order as they complete. Figure
// generation draws no randomness, so the stream is identical for every
// worker count.
func figuresStream(workers int, emit func(k int, f Figure) error) error {
	gens := []func() (Figure, error){Figure1, Figure2, Figure3, Figure4, Figure5}
	return campaign.Stream(len(gens), campaign.Options{Workers: workers},
		func(k int, _ *rand.Rand) (Figure, error) { return gens[k]() }, emit)
}

// FiguresParallel regenerates the five figures as campaign tasks across
// the given number of workers (<= 0 selects NumCPU).
func FiguresParallel(workers int) ([]Figure, error) {
	figs := make([]Figure, 0, 5)
	if err := figuresStream(workers, func(_ int, f Figure) error {
		figs = append(figs, f)
		return nil
	}); err != nil {
		return nil, err
	}
	return figs, nil
}

// FiguresRecords streams the figure reproductions as typed records into
// sink, one per figure: the claim counts, machine-checkable. It returns
// the IDs of figures whose claims failed so record-mode callers exit
// nonzero exactly like the report path (a failed claim is a result, so
// the record is still emitted). The sink is not flushed; the caller
// owns the stream's lifecycle.
func FiguresRecords(workers int, sink results.Sink) ([]string, error) {
	var failures []string
	err := figuresStream(workers, func(k int, f Figure) error {
		failed := 0
		for _, c := range f.Claims {
			if !c.OK {
				failed++
			}
		}
		ok := 1.0
		if failed > 0 {
			ok = 0
			failures = append(failures, f.ID)
		}
		return sink.Write(results.Record{
			Kind:   "figures",
			Index:  k,
			Config: fmt.Sprintf("%s: %s", f.ID, f.Title),
			Digest: results.Digest("figures|" + f.ID),
			Metrics: []results.Metric{
				{Key: "claims", Val: float64(len(f.Claims))},
				{Key: "failed", Val: float64(failed)},
				{Key: "ok", Val: ok},
			},
		})
	})
	if err != nil {
		return nil, err
	}
	return failures, nil
}
