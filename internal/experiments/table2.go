package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/campaign"
	"sensorfusion/internal/platoon"
	"sensorfusion/internal/render"
	"sensorfusion/internal/results"
	"sensorfusion/internal/schedule"
)

// Table2Row is one column of the paper's Table II for a schedule: the
// percentage of fusion rounds whose interval crossed the safety band.
type Table2Row struct {
	Schedule string
	// UpperPct is the percentage of rounds with the fusion upper bound
	// above 10.5 mph; LowerPct below 9.5 mph.
	UpperPct, LowerPct float64
	// PaperUpper and PaperLower are the paper's reported percentages.
	PaperUpper, PaperLower float64
	// Rounds is the number of vehicle-rounds simulated.
	Rounds int
	// Detections and Collisions are sanity counters (both expected 0).
	Detections int
	Collisions int
}

// Table2Options tunes the case-study reproduction.
type Table2Options struct {
	// Steps is the number of control periods per schedule (each step runs
	// one fusion round per vehicle). Default 1000.
	Steps int
	// Seed drives all randomness. The same seed is used for every
	// schedule so they face identical conditions streams.
	Seed int64
	// Parallel bounds the campaign engine's workers across the schedule
	// batches (default NumCPU). Every schedule is seeded identically from
	// Seed, so results match the serial run for any worker count.
	Parallel int
}

func (o Table2Options) withDefaults() Table2Options {
	if o.Steps <= 0 {
		o.Steps = 1000
	}
	if o.Seed == 0 {
		o.Seed = 2014 // DATE 2014
	}
	return o
}

// paperTable2 holds the published percentages.
var paperTable2 = map[schedule.Kind][2]float64{
	schedule.Ascending:  {0, 0},
	schedule.Descending: {17.42, 17.65},
	schedule.Random:     {5.72, 5.97},
}

// table2Stream is the generator's streaming core: one engine task per
// schedule, rows delivered to emit in schedule order as batches
// complete. Each batch rebuilds its own RNG from o.Seed (not from the
// engine's task seeds) so every schedule faces the identical conditions
// stream the serial code produced.
func table2Stream(o Table2Options, emit func(k int, row Table2Row) error) error {
	kinds := []schedule.Kind{schedule.Ascending, schedule.Descending, schedule.Random}
	return campaign.Stream(len(kinds), campaign.Options{Workers: o.Parallel, Seed: o.Seed},
		func(k int, _ *rand.Rand) (Table2Row, error) {
			kind := kinds[k]
			p := platoon.NewParams(kind)
			runner, err := platoon.NewRunner(p, rand.New(rand.NewSource(o.Seed)))
			if err != nil {
				return Table2Row{}, err
			}
			res, err := runner.Run(o.Steps, false)
			if err != nil {
				return Table2Row{}, err
			}
			paper := paperTable2[kind]
			return Table2Row{
				Schedule:   kind.String(),
				UpperPct:   100 * res.UpperRate(),
				LowerPct:   100 * res.LowerRate(),
				PaperUpper: paper[0],
				PaperLower: paper[1],
				Rounds:     res.Rounds,
				Detections: res.Detections,
				Collisions: res.Collisions,
			}, nil
		}, emit)
}

// Table2 reproduces the case study for the three schedules of Table II.
func Table2(opts Table2Options) ([]Table2Row, error) {
	o := opts.withDefaults()
	rows := make([]Table2Row, 0, 3)
	if err := table2Stream(o, func(_ int, row Table2Row) error {
		rows = append(rows, row)
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Records streams the case study as typed records into sink, one
// per schedule. The sink is not flushed; the caller owns the stream's
// lifecycle.
func Table2Records(opts Table2Options, sink results.Sink) error {
	o := opts.withDefaults()
	return table2Stream(o, func(k int, row Table2Row) error {
		return sink.Write(results.Record{
			Kind:   "table2",
			Index:  k,
			Config: row.Schedule,
			Digest: results.Digest(fmt.Sprintf("table2|schedule=%s|steps=%d|seed=%d", row.Schedule, o.Steps, o.Seed)),
			Seed:   o.Seed,
			Metrics: []results.Metric{
				{Key: "upper_pct", Val: row.UpperPct},
				{Key: "lower_pct", Val: row.LowerPct},
				{Key: "paper_upper", Val: row.PaperUpper},
				{Key: "paper_lower", Val: row.PaperLower},
				{Key: "rounds", Val: float64(row.Rounds)},
				{Key: "detections", Val: float64(row.Detections)},
				{Key: "collisions", Val: float64(row.Collisions)},
			},
		})
	})
}

// Table2Report renders the rows in the layout of the paper's Table II
// (conditions as rows, schedules as columns), with the paper's values.
func Table2Report(rows []Table2Row) string {
	var t render.Table
	header := []string{"condition"}
	for _, r := range rows {
		header = append(header, r.Schedule)
	}
	t.Header = header
	upper := []string{"More than 10.5 mph"}
	lower := []string{"Less than 9.5 mph"}
	paperUp := []string{"paper: >10.5"}
	paperLo := []string{"paper: <9.5"}
	for _, r := range rows {
		upper = append(upper, fmt.Sprintf("%.2f%%", r.UpperPct))
		lower = append(lower, fmt.Sprintf("%.2f%%", r.LowerPct))
		paperUp = append(paperUp, fmt.Sprintf("%.2f%%", r.PaperUpper))
		paperLo = append(paperLo, fmt.Sprintf("%.2f%%", r.PaperLower))
	}
	t.AddRow(upper...)
	t.AddRow(lower...)
	t.AddRow(paperUp...)
	t.AddRow(paperLo...)
	return t.String()
}
