package experiments

import (
	"fmt"
	"math/rand"

	"sensorfusion/internal/render"
)

// Section IV-A describes the full simulation campaign behind Table I:
// "the number of sensors vary from three to five; the lengths of the
// intervals are increased from 5 to 20 by increments of 3 for each
// interval. Finally, the number of attacked sensors is increased from
// one to ceil(n/2)-1." Table I shows eight representative rows; this
// file enumerates the whole campaign so any slice of it can be run.

// SweepLengths are the interval lengths the paper sweeps: 5..20 step 3.
func SweepLengths() []float64 { return []float64{5, 8, 11, 14, 17, 20} }

// EnumerateSweepConfigs yields every (widths multiset, fa) combination of
// the paper's campaign: n in [3,5], widths non-decreasing from
// SweepLengths, fa in [1, ceil(n/2)-1]. The non-decreasing constraint
// enumerates multisets (schedules only depend on the multiset).
func EnumerateSweepConfigs() []Table1Config {
	var out []Table1Config
	lengths := SweepLengths()
	for n := 3; n <= 5; n++ {
		maxFa := (n+1)/2 - 1
		widths := make([]float64, n)
		var rec func(k, start int)
		rec = func(k, start int) {
			if k == n {
				for fa := 1; fa <= maxFa; fa++ {
					cfg := Table1Config{
						Name:   fmt.Sprintf("n=%d, fa=%d, L=%v", n, fa, widths),
						Widths: append([]float64(nil), widths...),
						Fa:     fa,
					}
					out = append(out, cfg)
				}
				return
			}
			for idx := start; idx < len(lengths); idx++ {
				widths[k] = lengths[idx]
				rec(k+1, idx)
			}
		}
		rec(0, 0)
	}
	return out
}

// SweepSample draws k configurations uniformly from the full campaign.
func SweepSample(k int, rng *rand.Rand) []Table1Config {
	all := EnumerateSweepConfigs()
	if k >= len(all) {
		return all
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:k]
}

// SweepResult is the outcome of running a campaign slice.
type SweepResult struct {
	Rows []Table1Row
	// Violations lists configs where Descending came out better for the
	// system than Ascending — the paper (and our reproduction) observed
	// none: "the expected length under the Descending schedule was never
	// smaller than that under Ascending".
	Violations []string
}

// CampaignOptions configures a full or sampled run of the Section IV-A
// campaign through the parallel engine.
type CampaignOptions struct {
	// Table1Options tunes each configuration's evaluation, including the
	// engine's Parallel worker bound and root Seed.
	Table1Options
	// SampleK, when positive, draws that many configurations from the
	// full enumeration (seeded from Seed) instead of running all of them.
	SampleK int
	// Configs, when non-nil, runs exactly this slice of the campaign
	// instead of the enumeration (SampleK is then ignored).
	Configs []Table1Config
}

// RunCampaign evaluates a slice of the paper's Section IV-A campaign
// through the parallel engine: the explicit Configs slice if given, else
// a seeded SampleK-sized sample, else the whole enumeration. For a fixed
// Seed the result is byte-identical for every Parallel value.
func RunCampaign(opts CampaignOptions) (SweepResult, error) {
	cfgs := opts.Configs
	if cfgs == nil {
		cfgs = EnumerateSweepConfigs()
		if opts.SampleK > 0 {
			cfgs = SweepSample(opts.SampleK, rand.New(rand.NewSource(opts.Seed)))
		}
	}
	return RunSweep(cfgs, opts.Table1Options)
}

// RunSweep evaluates the given campaign slice and checks the paper's
// never-smaller observation on every config.
func RunSweep(cfgs []Table1Config, opts Table1Options) (SweepResult, error) {
	rows, err := Table1(cfgs, opts)
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{Rows: rows}
	const eps = 1e-9
	for _, r := range rows {
		if r.Desc < r.Asc-eps {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: desc %.3f < asc %.3f", r.Config.Name, r.Desc, r.Asc))
		}
	}
	return res, nil
}

// SweepReport renders a campaign slice.
func SweepReport(res SweepResult) string {
	var t render.Table
	t.Header = []string{"config", "E|S| Asc", "E|S| Desc", "gap", "no attack"}
	for _, r := range res.Rows {
		t.AddRow(r.Config.Name,
			fmt.Sprintf("%.2f", r.Asc),
			fmt.Sprintf("%.2f", r.Desc),
			fmt.Sprintf("%.2f", r.Desc-r.Asc),
			fmt.Sprintf("%.2f", r.NoAttack))
	}
	s := t.String()
	if len(res.Violations) == 0 {
		s += "\nDescending was never better than Ascending (matches the paper).\n"
	} else {
		s += fmt.Sprintf("\n%d VIOLATIONS of the never-smaller observation:\n", len(res.Violations))
		for _, v := range res.Violations {
			s += "  " + v + "\n"
		}
	}
	return s
}
