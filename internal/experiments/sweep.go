package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"sensorfusion/internal/render"
	"sensorfusion/internal/results"
)

// Section IV-A describes the full simulation campaign behind Table I:
// "the number of sensors vary from three to five; the lengths of the
// intervals are increased from 5 to 20 by increments of 3 for each
// interval. Finally, the number of attacked sensors is increased from
// one to ceil(n/2)-1." Table I shows eight representative rows; this
// file enumerates the whole campaign so any slice of it can be run.

// SweepLengths are the interval lengths the paper sweeps: 5..20 step 3.
func SweepLengths() []float64 { return []float64{5, 8, 11, 14, 17, 20} }

// EnumerateSweepConfigs yields every (widths multiset, fa) combination of
// the paper's campaign: n in [3,5], widths non-decreasing from
// SweepLengths, fa in [1, ceil(n/2)-1]. The non-decreasing constraint
// enumerates multisets (schedules only depend on the multiset).
func EnumerateSweepConfigs() []Table1Config {
	return EnumerateSweepConfigsFrom(SweepLengths())
}

// ParseLengths parses a comma-separated interval-length list ("5,8,11")
// into the strictly increasing positive grid EnumerateSweepConfigsFrom
// accepts — the CLI's -lengths syntax.
func ParseLengths(s string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad length %q in %q", field, s)
		}
		if v <= 0 {
			return nil, fmt.Errorf("experiments: length %g in %q not positive", v, s)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("experiments: lengths %q not strictly increasing at %g", s, v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty length list %q", s)
	}
	return out, nil
}

// EnumerateSweepConfigsFrom enumerates the paper's campaign over an
// arbitrary interval-length grid (strictly increasing, positive) in
// place of SweepLengths — the knob that makes "edit one grid parameter"
// a one-flag spec change for the incremental `update` workflow. The
// enumeration ORDER for configurations present in both grids is stable
// under grid edits that preserve the relative order of shared lengths,
// which is what lets the spec differ attribute unchanged digests to
// unchanged indices.
func EnumerateSweepConfigsFrom(lengths []float64) []Table1Config {
	var out []Table1Config
	for n := 3; n <= 5; n++ {
		maxFa := (n+1)/2 - 1
		widths := make([]float64, n)
		var rec func(k, start int)
		rec = func(k, start int) {
			if k == n {
				for fa := 1; fa <= maxFa; fa++ {
					cfg := Table1Config{
						Name:   fmt.Sprintf("n=%d, fa=%d, L=%v", n, fa, widths),
						Widths: append([]float64(nil), widths...),
						Fa:     fa,
					}
					out = append(out, cfg)
				}
				return
			}
			for idx := start; idx < len(lengths); idx++ {
				widths[k] = lengths[idx]
				rec(k+1, idx)
			}
		}
		rec(0, 0)
	}
	return out
}

// SweepSample draws k configurations uniformly from the full campaign.
func SweepSample(k int, rng *rand.Rand) []Table1Config {
	return sweepSampleFrom(EnumerateSweepConfigs(), k, rng)
}

// sweepSampleFrom draws k configurations uniformly from an enumeration.
func sweepSampleFrom(all []Table1Config, k int, rng *rand.Rand) []Table1Config {
	if k >= len(all) {
		return all
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:k]
}

// SweepResult is the outcome of running a campaign slice.
type SweepResult struct {
	Rows []Table1Row
	// Violations lists configs where Descending came out better for the
	// system than Ascending — the paper (and our reproduction) observed
	// none: "the expected length under the Descending schedule was never
	// smaller than that under Ascending".
	Violations []string
}

// ShardSpec selects one deterministic partition of the campaign
// enumeration for multi-process or multi-host execution, in one of two
// forms. The MODULAR form (Count > 0) runs the configurations whose
// global enumeration index is congruent to Index modulo Count — equal
// counts, trivially composable, the form manual sharding uses. The
// EXPLICIT form (Indices non-empty) runs exactly the listed global
// indices — the form the cost-balancing coordinator dispatches, since a
// cost-balanced partition is not a residue class. The zero value means
// "unsharded". Records produced under either form keep their GLOBAL
// index, so the merge of a full partition's outputs is byte-identical
// to the unsharded stream.
type ShardSpec struct {
	Index, Count int
	// Indices, when non-empty, selects the explicit index set (strictly
	// increasing, non-negative). Mutually exclusive with Count > 0.
	Indices []int
}

// Enabled reports whether the spec selects an actual partition.
func (s ShardSpec) Enabled() bool { return s.Count > 0 || len(s.Indices) > 0 }

func (s ShardSpec) validate() error {
	if len(s.Indices) > 0 {
		if s.Count > 0 {
			return fmt.Errorf("experiments: shard spec has both a modular form (%d/%d) and an explicit index set", s.Index, s.Count)
		}
		last := -1
		for _, idx := range s.Indices {
			if idx <= last {
				return fmt.Errorf("experiments: shard index set not strictly increasing at %d", idx)
			}
			last = idx
		}
		return nil
	}
	if !s.Enabled() {
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard %d/%d out of range (want 0 <= i < m)", s.Index, s.Count)
	}
	return nil
}

// String renders the spec in the form ParseShard reads back: i/m for
// the modular form, the compact index-set form otherwise.
func (s ShardSpec) String() string {
	if len(s.Indices) > 0 {
		return FormatIndexSet(s.Indices)
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses a shard spec: the modular "i/m" syntax (0-based
// index), or an explicit index set in FormatIndexSet's range form
// ("0-5,9,17-20"; a singleton needs its trailing comma, "5,"). A bare
// integer is rejected as ambiguous between the two forms.
func ParseShard(spec string) (ShardSpec, error) {
	if spec == "" {
		return ShardSpec{}, nil
	}
	if i, m, isModular := strings.Cut(spec, "/"); isModular {
		idx, err1 := strconv.Atoi(strings.TrimSpace(i))
		cnt, err2 := strconv.Atoi(strings.TrimSpace(m))
		if err1 != nil || err2 != nil || cnt <= 0 {
			return ShardSpec{}, fmt.Errorf("experiments: bad shard %q: want i/m with integer i and m > 0", spec)
		}
		s := ShardSpec{Index: idx, Count: cnt}
		if err := s.validate(); err != nil {
			return ShardSpec{}, err
		}
		return s, nil
	}
	if !strings.ContainsAny(spec, ",-") {
		return ShardSpec{}, fmt.Errorf("experiments: bad shard %q: want i/m (e.g. 0/4) or an index set (e.g. 0-5,9)", spec)
	}
	indices, err := ParseIndexSet(spec)
	if err != nil {
		return ShardSpec{}, err
	}
	return ShardSpec{Indices: indices}, nil
}

// CampaignOptions configures a full, sampled, or sharded run of the
// Section IV-A campaign through the parallel engine.
type CampaignOptions struct {
	// Table1Options tunes each configuration's evaluation, including the
	// engine's Parallel worker bound, root Seed, and result Cache.
	Table1Options
	// SampleK, when positive, draws that many configurations from the
	// full enumeration (seeded from Seed) instead of running all of them.
	SampleK int
	// Configs, when non-nil, runs exactly this slice of the campaign
	// instead of the enumeration (SampleK is then ignored).
	Configs []Table1Config
	// Lengths, when non-nil, replaces SweepLengths as the interval-length
	// grid the enumeration (and SampleK sampling) draws from. Ignored
	// when Configs is set. This is the spec knob `repro update` edits.
	Lengths []float64
	// Shard, when enabled, restricts the run to one deterministic
	// partition of the (possibly sampled or explicit) configuration
	// list. Sharding composes after sampling: every shard of a seeded
	// sample partitions the same sample.
	Shard ShardSpec
}

// plan resolves the options to the configuration slice to run and each
// configuration's global enumeration index (the record index that
// survives sharding and merging).
func (opts CampaignOptions) plan() ([]Table1Config, []int, error) {
	if err := opts.Shard.validate(); err != nil {
		return nil, nil, err
	}
	cfgs := opts.Configs
	if cfgs == nil {
		lengths := opts.Lengths
		if lengths == nil {
			lengths = SweepLengths()
		}
		cfgs = EnumerateSweepConfigsFrom(lengths)
		if opts.SampleK > 0 {
			cfgs = sweepSampleFrom(cfgs, opts.SampleK, rand.New(rand.NewSource(opts.Seed)))
		}
	}
	if !opts.Shard.Enabled() {
		global := make([]int, len(cfgs))
		for k := range global {
			global[k] = k
		}
		return cfgs, global, nil
	}
	var (
		mine   []Table1Config
		global []int
	)
	if len(opts.Shard.Indices) > 0 {
		for _, k := range opts.Shard.Indices {
			if k >= len(cfgs) {
				return nil, nil, fmt.Errorf("experiments: shard index %d outside the %d planned configurations", k, len(cfgs))
			}
			mine = append(mine, cfgs[k])
			global = append(global, k)
		}
		return mine, global, nil
	}
	for k := opts.Shard.Index; k < len(cfgs); k += opts.Shard.Count {
		mine = append(mine, cfgs[k])
		global = append(global, k)
	}
	return mine, global, nil
}

// PlannedCount resolves the options to the number of configurations the
// run will actually evaluate (after sampling and sharding) — the one
// source of truth for progress banners, so the CLI cannot drift from
// plan()'s partition scheme.
func (opts CampaignOptions) PlannedCount() (int, error) {
	cfgs, _, err := opts.plan()
	if err != nil {
		return 0, err
	}
	return len(cfgs), nil
}

// streamCampaignRows is the campaign generator's streaming core: rows
// flow to emit in global-enumeration order as engine tasks complete. It
// shares table1Stream's part-level scheduling, so heavy configurations
// (and single-configuration shards) parallelize internally too.
func streamCampaignRows(opts CampaignOptions, emit func(global int, row Table1Row) error) error {
	o := opts.Table1Options.withDefaults()
	cfgs, global, err := opts.plan()
	if err != nil {
		return err
	}
	return table1Stream(cfgs, o, func(k int, row Table1Row) error {
		return emit(global[k], row)
	})
}

// RunCampaign evaluates a slice of the paper's Section IV-A campaign
// through the parallel engine: the explicit Configs slice if given, else
// a seeded SampleK-sized sample, else the whole enumeration, optionally
// restricted to one shard. For a fixed Seed the result is byte-identical
// for every Parallel value.
func RunCampaign(opts CampaignOptions) (SweepResult, error) {
	var res SweepResult
	if err := streamCampaignRows(opts, func(_ int, row Table1Row) error {
		res.Rows = append(res.Rows, row)
		return nil
	}); err != nil {
		return SweepResult{}, err
	}
	res.Violations = rowViolations(res.Rows)
	return res, nil
}

// StreamCampaign evaluates the campaign slice and streams one typed
// record per configuration into sink, in global-enumeration order. It
// returns the never-smaller violations observed in this run (this shard
// only, under a sharded run — the merge subcommand re-runs the check
// over the full merged set). The sink is not flushed; the caller owns
// the stream's lifecycle.
func StreamCampaign(opts CampaignOptions, sink results.Sink) ([]string, error) {
	o := opts.Table1Options.withDefaults()
	var violations []string
	if err := streamCampaignRows(opts, func(global int, row Table1Row) error {
		if v, bad := rowViolation(row); bad {
			violations = append(violations, v)
		}
		return sink.Write(table1Record("campaign", global, row, o))
	}); err != nil {
		return nil, err
	}
	return violations, nil
}

// RunSweep evaluates the given campaign slice and checks the paper's
// never-smaller observation on every config.
func RunSweep(cfgs []Table1Config, opts Table1Options) (SweepResult, error) {
	return RunCampaign(CampaignOptions{Table1Options: opts, Configs: cfgs})
}

// neverSmallerEps tolerates float jitter in the Desc >= Asc comparison.
const neverSmallerEps = 1e-9

func rowViolation(r Table1Row) (string, bool) {
	if r.Desc < r.Asc-neverSmallerEps {
		return fmt.Sprintf("%s: desc %.3f < asc %.3f", r.Config.Name, r.Desc, r.Asc), true
	}
	return "", false
}

func rowViolations(rows []Table1Row) []string {
	var out []string
	for _, r := range rows {
		if v, bad := rowViolation(r); bad {
			out = append(out, v)
		}
	}
	return out
}

// RecordNeverSmaller checks the paper's never-smaller claim on ONE
// record: a record carrying asc and desc metrics must satisfy
// desc >= asc. It returns the violation description and true when the
// claim fails. Records without the metrics pass vacuously. This is the
// streaming primitive behind CheckNeverSmaller and the coordinator's
// per-record merge check — bounded-memory merges verify the claim as
// records flow, never holding the set.
func RecordNeverSmaller(rec results.Record) (string, bool) {
	asc, okA := rec.Metric("asc")
	desc, okD := rec.Metric("desc")
	if okA && okD && desc < asc-neverSmallerEps {
		return fmt.Sprintf("%s: desc %.3f < asc %.3f", rec.Config, desc, asc), true
	}
	return "", false
}

// CheckNeverSmaller re-runs the paper's never-smaller claim over a
// merged record set: every record carrying asc and desc metrics must
// satisfy desc >= asc. This is how a sharded campaign asserts the claim
// globally — each shard checks its own slice while running, and the
// merge re-checks the union.
func CheckNeverSmaller(recs []results.Record) []string {
	var out []string
	for _, rec := range recs {
		if v, bad := RecordNeverSmaller(rec); bad {
			out = append(out, v)
		}
	}
	return out
}

// NeverSmallerSink wraps a sink and re-checks the never-smaller claim
// on every record streaming through — the bounded-memory replacement
// for materializing a merged set just to run CheckNeverSmaller over it.
type NeverSmallerSink struct {
	// Next receives every record unchanged.
	Next results.Sink
	// Violations accumulates one description per failing record, in
	// stream order.
	Violations []string
}

// Write checks and forwards one record.
func (s *NeverSmallerSink) Write(rec results.Record) error {
	if v, bad := RecordNeverSmaller(rec); bad {
		s.Violations = append(s.Violations, v)
	}
	return s.Next.Write(rec)
}

// Flush flushes the wrapped sink.
func (s *NeverSmallerSink) Flush() error { return s.Next.Flush() }

// SweepReport renders a campaign slice.
func SweepReport(res SweepResult) string {
	var t render.Table
	t.Header = []string{"config", "E|S| Asc", "E|S| Desc", "gap", "no attack"}
	for _, r := range res.Rows {
		t.AddRow(r.Config.Name,
			fmt.Sprintf("%.2f", r.Asc),
			fmt.Sprintf("%.2f", r.Desc),
			fmt.Sprintf("%.2f", r.Desc-r.Asc),
			fmt.Sprintf("%.2f", r.NoAttack))
	}
	s := t.String()
	if len(res.Violations) == 0 {
		s += "\nDescending was never better than Ascending (matches the paper).\n"
	} else {
		s += fmt.Sprintf("\n%d VIOLATIONS of the never-smaller observation:\n", len(res.Violations))
		for _, v := range res.Violations {
			s += "  " + v + "\n"
		}
	}
	return s
}
