package experiments

import (
	"math/rand"
	"testing"
)

// BenchmarkScenarioFaultsStep times one step of the transient fault
// scenario — the per-step Sweeper fusion plus injection and detection
// that scenario campaigns pay at every round. A `make bench-json`
// headliner: the Sweeper routing removed the per-step fusion.Fuse
// sort-and-allocate; the single alloc/op left is the injector's
// defensive copy of the correct intervals (faults.Injector.Apply).
func BenchmarkScenarioFaultsStep(b *testing.B) {
	s := faultScenarios()[1].(*faultScenario) // transient n=5 rate=0.08
	rng := rand.New(rand.NewSource(17))
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.run(b.N, rng); err != nil {
		b.Fatal(err)
	}
}
