package faults

import (
	"reflect"
	"testing"
)

// TestWindowDetectorOverlappingWindows pins the sliding window at the
// moment two fault bursts overlap inside it: a sensor flagged in two
// separate bursts must be deemed compromised exactly while both bursts
// are in the window, and released as the older burst slides out.
func TestWindowDetectorOverlappingWindows(t *testing.T) {
	det, err := NewWindowDetector(3, 4, 1) // deemed when flagged >1 of last 4
	if err != nil {
		t.Fatal(err)
	}
	rounds := [][]int{
		{0},    // burst A round 1: count(0)=1, not deemed
		{},     //
		{0, 1}, // burst B overlaps A in the window: count(0)=2 -> deemed
		{},     //
		{},     // burst A expired (round 0 left the window): count(0)=1
		{1},    // sensor 1: rounds 2 and 5 both within window: count(1)=2
	}
	want := [][]int{nil, nil, {0}, {0}, nil, {1}}
	for r, suspects := range rounds {
		got, err := det.Record(suspects)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[r]) {
			t.Errorf("round %d: deemed %v, want %v (counts %v)", r, got, want[r], det.Counts())
		}
	}
}

// TestWindowDetectorBackToBackBursts pins the exact expiry boundary:
// flags on consecutive rounds keep a sensor deemed until the window has
// slid fully past the last flag.
func TestWindowDetectorBackToBackBursts(t *testing.T) {
	det, err := NewWindowDetector(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	deemedAt := func(suspects []int) bool {
		out, err := det.Record(suspects)
		if err != nil {
			t.Fatal(err)
		}
		return len(out) > 0
	}
	if deemedAt([]int{0}) {
		t.Error("deemed after a single flag")
	}
	if !deemedAt([]int{0}) {
		t.Error("not deemed with 2 flags in a 3-round window")
	}
	if !deemedAt(nil) {
		t.Error("released too early: both flags still in the window")
	}
	if deemedAt(nil) {
		t.Error("still deemed after the first flag slid out")
	}
	if deemedAt(nil) {
		t.Error("still deemed after all flags slid out")
	}
}
