package faults

import (
	"math/rand"
	"testing"

	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
)

func TestNewWindowDetectorValidation(t *testing.T) {
	if _, err := NewWindowDetector(0, 5, 2); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewWindowDetector(3, 0, 0); err == nil {
		t.Error("window=0 must fail")
	}
	if _, err := NewWindowDetector(3, 5, -1); err == nil {
		t.Error("negative threshold must fail")
	}
	if _, err := NewWindowDetector(3, 5, 5); err == nil {
		t.Error("threshold >= window must fail")
	}
	if _, err := NewWindowDetector(3, 5, 2); err != nil {
		t.Error(err)
	}
}

func TestWindowDetectorToleratesTransients(t *testing.T) {
	// Threshold 2 in a window of 5: a sensor flagged twice stays trusted;
	// flagged a third time it is deemed compromised.
	d, err := NewWindowDetector(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		out, err := d.Record([]int{1})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("round %d: %v deemed compromised below threshold", round, out)
		}
	}
	out, err := d.Record([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("third flag should compromise sensor 1: %v", out)
	}
}

func TestWindowDetectorSlidingExpiry(t *testing.T) {
	// Window 3, threshold 1: two flags within 3 rounds -> compromised;
	// flags separated by the window length are forgotten.
	d, err := NewWindowDetector(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]int{{0}, nil, nil, {0}, nil, nil, {0}}
	for k, s := range steps {
		out, err := d.Record(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("step %d: sparse flags must never exceed threshold: %v", k, out)
		}
	}
	// Now two flags in consecutive rounds exceed threshold 1.
	if _, err := d.Record([]int{0}); err != nil {
		t.Fatal(err)
	}
	out, err := d.Record([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("dense flags must compromise: %v (counts %v)", out, d.Counts())
	}
}

func TestWindowDetectorReset(t *testing.T) {
	d, _ := NewWindowDetector(2, 3, 0)
	if _, err := d.Record([]int{0}); err != nil {
		t.Fatal(err)
	}
	if c := d.Counts(); c[0] != 1 {
		t.Fatalf("counts = %v", c)
	}
	d.Reset()
	if c := d.Counts(); c[0] != 0 || c[1] != 0 {
		t.Fatalf("counts after reset = %v", c)
	}
}

func TestWindowDetectorBadSuspect(t *testing.T) {
	d, _ := NewWindowDetector(2, 3, 0)
	if _, err := d.Record([]int{5}); err == nil {
		t.Fatal("out-of-range suspect must fail")
	}
	if _, err := d.Record([]int{-1}); err == nil {
		t.Fatal("negative suspect must fail")
	}
}

func TestWindowDetectorDuplicateSuspects(t *testing.T) {
	// The same sensor flagged twice in one round counts once.
	d, _ := NewWindowDetector(2, 4, 1)
	out, err := d.Record([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("duplicate in-round flags double-counted: %v (counts %v)", out, d.Counts())
	}
	if d.Counts()[0] != 1 {
		t.Fatalf("counts = %v", d.Counts())
	}
}

func TestInjectorValidate(t *testing.T) {
	if err := (Injector{Rate: -0.1}).Validate(); err == nil {
		t.Error("negative rate must fail")
	}
	if err := (Injector{Rate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 must fail")
	}
	if err := (Injector{Rate: 0.5, MaxShift: -1}).Validate(); err == nil {
		t.Error("negative shift must fail")
	}
	if err := (Injector{Rate: 0.2}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestInjectorFaultsExcludeTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := Injector{Rate: 1} // fault everything
	ivs := []interval.Interval{
		interval.MustCentered(0.2, 1),
		interval.MustCentered(-0.4, 2),
		interval.MustCentered(0, 4),
	}
	out, faulted, err := in.Apply(ivs, 0, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 3 {
		t.Fatalf("faulted = %v, want all", faulted)
	}
	for k, iv := range out {
		if iv.Contains(0) {
			t.Fatalf("faulted sensor %d still contains truth: %v", k, iv)
		}
		if iv.Width() != ivs[k].Width() {
			t.Fatalf("fault changed width: %v -> %v", ivs[k], iv)
		}
	}
	// Original input untouched.
	if !ivs[0].Contains(0.2) {
		t.Fatal("Apply mutated its input")
	}
}

func TestInjectorSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Injector{Rate: 1}
	ivs := []interval.Interval{interval.MustCentered(0, 1), interval.MustCentered(0, 2)}
	out, faulted, err := in.Apply(ivs, 0, map[int]bool{0: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 || faulted[0] != 1 {
		t.Fatalf("faulted = %v, want [1]", faulted)
	}
	if !out[0].Equal(ivs[0]) {
		t.Fatal("skipped sensor was modified")
	}
}

func TestInjectorZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ivs := []interval.Interval{interval.MustCentered(0, 1)}
	out, faulted, err := (Injector{Rate: 0}).Apply(ivs, 0, nil, rng)
	if err != nil || faulted != nil || !out[0].Equal(ivs[0]) {
		t.Fatalf("zero rate changed something: %v %v %v", out, faulted, err)
	}
}

func TestInjectorErrors(t *testing.T) {
	ivs := []interval.Interval{interval.MustCentered(0, 1)}
	if _, _, err := (Injector{Rate: 0.5}).Apply(ivs, 0, nil, nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, _, err := (Injector{Rate: 2}).Apply(ivs, 0, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid config must fail")
	}
}

// End-to-end: random faults within the fusion fault bound never evict the
// truth, and the windowed detector only convicts persistently faulty
// sensors.
func TestFaultsWithFusionIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, f = 5, 2
	widths := []float64{1, 1, 2, 3, 4}
	in := Injector{Rate: 0.25}
	det, err := NewWindowDetector(n, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 300; round++ {
		correct := make([]interval.Interval, n)
		for k, w := range widths {
			correct[k] = interval.MustCentered((rng.Float64()-0.5)*w, w)
		}
		faultedIvs, faulted, err := in.Apply(correct, 0, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(faulted) > f {
			continue // beyond the fault bound: no guarantee to check
		}
		fused, suspects, err := fusion.FuseAndDetect(faultedIvs, f)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !fused.Contains(0) {
			t.Fatalf("round %d: truth lost with %d faults <= f", round, len(faulted))
		}
		isFault := map[int]bool{}
		for _, k := range faulted {
			isFault[k] = true
		}
		for _, s := range suspects {
			if !isFault[s] {
				t.Fatalf("round %d: healthy sensor %d flagged", round, s)
			}
		}
		if _, err := det.Record(suspects); err != nil {
			t.Fatal(err)
		}
	}
}
