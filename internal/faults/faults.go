// Package faults implements the extensions the paper sketches but defers:
// footnote 1's fault model over time (a sensor is deemed compromised only
// if it is flagged more than a threshold number of times within a sliding
// window, so transient faults do not get a sensor discarded) and the
// conclusion's random faults occurring alongside attacks.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"sensorfusion/internal/interval"
)

// WindowDetector wraps the instantaneous detector with the paper's
// windowed fault model: per round it receives the set of sensors whose
// intervals missed the fusion interval, and it deems a sensor compromised
// only when the sensor was flagged more than Threshold times within the
// last Window rounds.
type WindowDetector struct {
	n         int
	window    int
	threshold int
	// history is a ring buffer of per-round flag sets.
	history [][]bool
	next    int
	filled  int
	counts  []int
}

// NewWindowDetector returns a detector for n sensors deeming a sensor
// compromised when flagged MORE THAN threshold times in the last window
// rounds (threshold plays the role of "f out of w" in footnote 1).
func NewWindowDetector(n, window, threshold int) (*WindowDetector, error) {
	if n <= 0 {
		return nil, errors.New("faults: need sensors")
	}
	if window <= 0 || threshold < 0 || threshold >= window {
		return nil, fmt.Errorf("faults: bad window=%d threshold=%d", window, threshold)
	}
	h := make([][]bool, window)
	for k := range h {
		h[k] = make([]bool, n)
	}
	return &WindowDetector{n: n, window: window, threshold: threshold, history: h, counts: make([]int, n)}, nil
}

// Record folds one round's instantaneous suspects into the window and
// returns the sensors currently deemed compromised (flagged more than
// threshold times in the window), in ascending order.
func (d *WindowDetector) Record(suspects []int) ([]int, error) {
	slot := d.history[d.next]
	// Retire the oldest round's flags.
	if d.filled == d.window {
		for s, flagged := range slot {
			if flagged {
				d.counts[s]--
			}
		}
	} else {
		d.filled++
	}
	for s := range slot {
		slot[s] = false
	}
	for _, s := range suspects {
		if s < 0 || s >= d.n {
			return nil, fmt.Errorf("faults: suspect %d out of range", s)
		}
		if !slot[s] {
			slot[s] = true
			d.counts[s]++
		}
	}
	d.next = (d.next + 1) % d.window
	var out []int
	for s, c := range d.counts {
		if c > d.threshold {
			out = append(out, s)
		}
	}
	return out, nil
}

// Counts returns the current per-sensor flag counts within the window.
func (d *WindowDetector) Counts() []int { return append([]int(nil), d.counts...) }

// Reset clears all history.
func (d *WindowDetector) Reset() {
	for k := range d.history {
		for s := range d.history[k] {
			d.history[k][s] = false
		}
	}
	for s := range d.counts {
		d.counts[s] = 0
	}
	d.next, d.filled = 0, 0
}

// Injector produces random transient faults: each round each correct
// sensor independently becomes faulty with probability Rate, in which
// case its interval is displaced so it no longer contains the true value.
type Injector struct {
	// Rate is the per-sensor per-round fault probability in [0, 1].
	Rate float64
	// MaxShift bounds the displacement magnitude in multiples of the
	// sensor's width (default 2 when zero).
	MaxShift float64
}

// Validate checks the configuration.
func (in Injector) Validate() error {
	if in.Rate < 0 || in.Rate > 1 {
		return fmt.Errorf("faults: rate %v outside [0,1]", in.Rate)
	}
	if in.MaxShift < 0 {
		return fmt.Errorf("faults: negative MaxShift %v", in.MaxShift)
	}
	return nil
}

// Apply returns a copy of ivs with faults injected relative to the given
// true value, plus the indices of the faulted sensors. Sensors in skip
// (e.g. attacked sensors, whose intervals the attacker controls) are
// never faulted.
func (in Injector) Apply(ivs []interval.Interval, truth float64, skip map[int]bool, rng *rand.Rand) ([]interval.Interval, []int, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if rng == nil {
		return nil, nil, errors.New("faults: nil rng")
	}
	maxShift := in.MaxShift
	if maxShift == 0 {
		maxShift = 2
	}
	out := append([]interval.Interval(nil), ivs...)
	var faulted []int
	for k, iv := range out {
		if skip != nil && skip[k] {
			continue
		}
		if rng.Float64() >= in.Rate {
			continue
		}
		w := iv.Width()
		if w == 0 {
			w = 1
		}
		// Displace past the truth-containing range: the center moves by
		// more than half the width plus a random extra, to either side.
		dir := 1.0
		if rng.Float64() < 0.5 {
			dir = -1
		}
		shift := dir * w * (0.5 + rng.Float64()*maxShift + 1e-3)
		center := truth + shift
		out[k] = interval.MustCentered(center, w)
		if out[k].Contains(truth) {
			// Defensive: the construction above should always exclude the
			// truth; guard against zero-width artifacts.
			out[k] = out[k].Translate(dir * w)
		}
		faulted = append(faulted, k)
	}
	return out, faulted, nil
}
