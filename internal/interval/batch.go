package interval

// This file is the batched half of the incremental Marzullo machinery:
// FuseWith (incsweep.go) scores one candidate interval-set per call;
// Batch + Sweeper.FuseBatch/ScoreBatch score MANY candidate sets in one
// call against the same preloaded base. The attacker's plan search is
// the driving workload: thousands of candidate placements, each scored
// against hundreds of preloaded worlds — the innermost product of the
// whole campaign. Batching buys three constant factors the scalar path
// cannot: the candidate endpoints are laid out flat (SoA) and walked
// sequentially, the base endpoint arrays stay hot across the entire
// candidate sweep, and the merge loop itself is branch-lean — sentinel
// endpoints replace the per-iteration exhaustion tests, so every pick
// is a single predictable float compare.
//
// All of it is pure selection, no arithmetic: the kernel returns
// bit-identical results to FuseWith and fusion.Fuse, pinned by the
// differential and fuzz tests in internal/fusion (FuzzFuseBatch).

import "math"

// Batch is a flat, reusable set of candidate interval-sets for
// Sweeper.FuseBatch/ScoreBatch. Every candidate holds exactly K
// intervals; candidate i's 2K endpoints are stored pre-sorted in two
// structure-of-arrays segments, each guarded by -Inf/+Inf sentinels so
// the batch kernel's merge loop needs no exhaustion branches. Sorting
// happens once per Add — once per candidate SET — not once per
// (candidate, base) query the way repeated FuseWith calls would pay.
//
// Endpoints must be finite (the sentinels reserve ±Inf). The zero
// value is an empty batch with K 0; Reset both clears and sets K. A
// Batch is not safe for concurrent use.
type Batch struct {
	k        int
	los, his []float64 // stride k+2 segments: -Inf, sorted endpoints, +Inf
	n        int
}

// Reset clears the batch and fixes the per-candidate interval count to
// k, reusing the backing arrays. k must be non-negative.
func (b *Batch) Reset(k int) {
	if k < 0 {
		panic("interval: negative Batch interval count")
	}
	b.k = k
	b.los = b.los[:0]
	b.his = b.his[:0]
	b.n = 0
}

// K returns the per-candidate interval count.
func (b *Batch) K() int { return b.k }

// Len returns the number of candidates added since the last Reset.
func (b *Batch) Len() int { return b.n }

// Add appends one candidate: exactly K intervals, finite endpoints,
// Lo <= Hi. The endpoints are insertion-sorted into the candidate's
// flat segment (K is small on every hot path, so the quadratic sort is
// the cheap one); nothing is allocated beyond amortized growth of the
// backing arrays.
func (b *Batch) Add(ivs []Interval) {
	if len(ivs) != b.k {
		panic("interval: Batch.Add with wrong interval count")
	}
	// The dominant batch shapes (k <= 2: the attacker places one or two
	// intervals) collapse to a single bounded append — at most one
	// compare-and-swap does all the sorting.
	switch b.k {
	case 1:
		b.los = append(b.los, math.Inf(-1), ivs[0].Lo, math.Inf(1))
		b.his = append(b.his, math.Inf(-1), ivs[0].Hi, math.Inf(1))
		b.n++
		return
	case 2:
		lo0, lo1 := ivs[0].Lo, ivs[1].Lo
		if lo1 < lo0 {
			lo0, lo1 = lo1, lo0
		}
		hi0, hi1 := ivs[0].Hi, ivs[1].Hi
		if hi1 < hi0 {
			hi0, hi1 = hi1, hi0
		}
		b.los = append(b.los, math.Inf(-1), lo0, lo1, math.Inf(1))
		b.his = append(b.his, math.Inf(-1), hi0, hi1, math.Inf(1))
		b.n++
		return
	}
	base := len(b.los) + 1 // first real endpoint slot, after the -Inf sentinel
	b.los = append(b.los, math.Inf(-1))
	b.his = append(b.his, math.Inf(-1))
	for _, iv := range ivs {
		b.los = insertSortedFrom(b.los, base, iv.Lo)
		b.his = insertSortedFrom(b.his, base, iv.Hi)
	}
	b.los = append(b.los, math.Inf(1))
	b.his = append(b.his, math.Inf(1))
	b.n++
}

// insertSortedFrom appends x and bubbles it into place without moving
// past index from — InsertSorted confined to the current candidate's
// segment of the flat array.
func insertSortedFrom(sorted []float64, from int, x float64) []float64 {
	sorted = append(sorted, x)
	for i := len(sorted) - 1; i > from && sorted[i-1] > x; i-- {
		sorted[i-1], sorted[i] = sorted[i], sorted[i-1]
	}
	return sorted
}

// FuseBatch computes the Marzullo fusion interval of base ∪ candidate
// for every candidate in b, with fault bound f over the combined
// n = Len()+b.K() intervals, writing candidate i's result to out[i] and
// ok[i] (false exactly when FuseWith would report no fusion). out and
// ok must have length b.Len(). Results are bit-identical to calling
// FuseWith per candidate; only the constant factors differ.
func (s *Sweeper) FuseBatch(b *Batch, f int, out []Interval, ok []bool) {
	if len(out) != b.n || len(ok) != b.n {
		panic("interval: FuseBatch output length mismatch")
	}
	nb := len(s.los)
	n := nb + b.k
	need := n - f
	if n == 0 || f < 0 || need <= 0 {
		for i := range ok {
			out[i], ok[i] = Interval{}, false
		}
		return
	}
	// Lane kernels (kernel.go) cover the hot candidate shapes k=1 and
	// k=2; they read the raw base arrays plus per-need threshold tables,
	// not the sentinel copies, so ensureSentinels is skipped.
	if b.k >= 1 && b.k <= 2 && activeKernel != kernelGeneric {
		s.fuseBatchLanes(b, need, out, nil, ok)
		return
	}
	s.ensureSentinels()
	blos, bhis := s.slos, s.shis
	stride := b.k + 2
	for i := 0; i < b.n; i++ {
		seg := i * stride
		out[i], ok[i] = fuseMerged(blos, bhis,
			b.los[seg:seg+stride], b.his[seg:seg+stride], n, need, nb, b.k)
	}
}

// ScoreBatch is FuseBatch reduced to the attacker's objective: widths[i]
// receives the fusion width of candidate i (unspecified when ok[i] is
// false). widths and ok must have length b.Len().
func (s *Sweeper) ScoreBatch(b *Batch, f int, widths []float64, ok []bool) {
	if len(widths) != b.n || len(ok) != b.n {
		panic("interval: ScoreBatch output length mismatch")
	}
	nb := len(s.los)
	n := nb + b.k
	need := n - f
	if n == 0 || f < 0 || need <= 0 {
		for i := range ok {
			widths[i], ok[i] = 0, false
		}
		return
	}
	if b.k >= 1 && b.k <= 2 && activeKernel != kernelGeneric {
		s.fuseBatchLanes(b, need, nil, widths, ok)
		return
	}
	s.ensureSentinels()
	blos, bhis := s.slos, s.shis
	stride := b.k + 2
	for i := 0; i < b.n; i++ {
		seg := i * stride
		iv, o := fuseMerged(blos, bhis,
			b.los[seg:seg+stride], b.his[seg:seg+stride], n, need, nb, b.k)
		widths[i], ok[i] = iv.Hi-iv.Lo, o
	}
}

// ensureSentinels (re)builds the sentinel-guarded copies of the base
// endpoint arrays the batch kernel walks: -Inf, the sorted endpoints,
// +Inf. Rebuilt lazily after any Preload/Add, so scalar-only users
// never pay for them.
func (s *Sweeper) ensureSentinels() {
	if s.sclean {
		return
	}
	s.slos = append(s.slos[:0], math.Inf(-1))
	s.slos = append(s.slos, s.los...)
	s.slos = append(s.slos, math.Inf(1))
	s.shis = append(s.shis[:0], math.Inf(-1))
	s.shis = append(s.shis, s.his...)
	s.shis = append(s.shis, math.Inf(1))
	s.sclean = true
}

// fuseMerged is the branch-tuned core: the same two-pointer coverage
// scan as Sweeper.fuseSorted, walked over sentinel-guarded arrays. All
// four slices carry a -Inf at index 0 and a +Inf at the end, so the
// exhaustion tests of the scalar kernel (three boundary comparisons per
// pick) collapse into the value comparison itself: an exhausted side
// presents ±Inf and loses every pick. The slices are hoisted into
// locals once; the inner counter loops advance over monotone data and
// terminate on the sentinels. Tie-breaking (base before candidate on
// equal endpoints) matches the scalar kernel exactly, so the selected
// endpoints — and therefore the returned bits — are identical.
//
// nb and k are the real (sentinel-free) base and candidate interval
// counts; n = nb+k and need = n-f are precomputed by the callers.
func fuseMerged(blos, bhis, clos, chis []float64, n, need, nb, k int) (Interval, bool) {
	// Ascending scan over the merged Lo endpoints. bi/ei index the next
	// unconsumed base/candidate Lo (1-based past the -Inf sentinel);
	// bj/ej are the first base/candidate Hi not strictly below the
	// current point, so the counts of His < x are bj-1 and ej-1.
	bi, ei := 1, 1
	bj, ej := 1, 1
	lo, haveLo := 0.0, false
	for c := 1; c <= n; c++ {
		x := clos[ei]
		if blos[bi] <= x {
			x = blos[bi]
			bi++
		} else {
			ei++
		}
		for bhis[bj] < x {
			bj++
		}
		for chis[ej] < x {
			ej++
		}
		// Coverage at x: c Los consumed are all <= x; His < x are
		// (bj-1)+(ej-1).
		if c-(bj+ej-2) >= need {
			lo, haveLo = x, true
			break
		}
	}
	if !haveLo {
		return Interval{}, false
	}
	// Descending scan over the merged Hi endpoints; bj/ej now count the
	// base/candidate Los <= x directly (indices 1..bj are <= x).
	bi, ei = nb, k
	bj, ej = nb, k
	hi := 0.0
	for c := 1; c <= n; c++ {
		x := chis[ei]
		if bhis[bi] >= x {
			x = bhis[bi]
			bi--
		} else {
			ei--
		}
		for blos[bj] > x {
			bj--
		}
		for clos[ej] > x {
			ej--
		}
		// Coverage lower bound at x: Los <= x are bj+ej; the c His
		// consumed so far are all >= x, so His < x <= n-c. Exact at the
		// lowest-index copy of each distinct x — the same duplicate
		// handling as the scalar reverse scan.
		if (bj+ej)-(n-c) >= need {
			hi = x
			break
		}
	}
	return Interval{Lo: lo, Hi: hi}, true
}
