//go:build amd64 && !purego

package interval

// amd64 side of the kernel dispatch: CPUID/XGETBV feature detection
// (hand-rolled — this module deliberately has no dependencies, so no
// golang.org/x/sys/cpu) and the Go wrapper around the AVX2 four-lane
// kernel in kernel_amd64.s.

// cpuidex executes CPUID with the given leaf and subleaf
// (kernel_amd64.s).
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask
// (kernel_amd64.s).
func xgetbv0() (eax, edx uint32)

// fuseK2AVX2 runs the four-lane k=2 kernel (kernel_amd64.s) over nb
// base endpoints for the four lane segments starting at clos/chis
// (Batch layout: stride 4, sentinels at slots 0 and 3). It writes the
// base-threshold selections to outLo/outHi ([4]float64, +Inf/-Inf when
// nothing qualified) and the base coverage at the 16 candidate
// thresholds to bcov ([16]int64, threshold-major: clo0 lanes 0-3, then
// clo1, chi0, chi1). When nb is 0 the pointers into the base arrays are
// dummies and must not be dereferenced — the assembly loop body is
// skipped entirely.
//
//go:noescape
func fuseK2AVX2(blos, bhis *float64, nb int, thrLo, thrHi *int64, clos, chis *float64, outLo, outHi *float64, bcov *int64)

// haveAVX2 reports runtime AVX2 support: AVX2 in CPUID.7.0:EBX plus
// OSXSAVE/AVX in CPUID.1:ECX with the OS actually enabling XMM+YMM
// state in XCR0 (the same ladder golang.org/x/sys/cpu walks).
var haveAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 { // XMM and YMM state OS-enabled
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

// defaultKernel selects the startup kernel: the AVX2 four-lane kernel
// when the CPU supports it, the generic merge kernel otherwise (the
// unrolled kernel stays selectable via SENSORFUSION_KERNEL/SetKernel).
func defaultKernel() kernelKind {
	if haveAVX2 {
		return kernelAVX2
	}
	return kernelGeneric
}

// kernelDummyF64/kernelDummyI64 give fuseK2AVX2 valid (never
// dereferenced) pointers when the base is empty.
var (
	kernelDummyF64 float64
	kernelDummyI64 int64
)

// fuseLanesAVX2 drives fuseK2AVX2 over b's lanes in groups of four and
// finalizes each lane's candidate thresholds in Go (identical to the
// unrolled kernel's finalizeK2 — the assembly computes exactly Part A
// and Part B of fuseLaneK2's pass). It returns the number of lanes
// consumed; the remainder (b.n mod 4) falls through to the unrolled
// kernel in fuseBatchLanes.
func (s *Sweeper) fuseLanesAVX2(b *Batch, need int, out []Interval, widths []float64, ok []bool) int {
	nb := len(s.los)
	blos, bhis := &kernelDummyF64, &kernelDummyF64
	tlo, thi := &kernelDummyI64, &kernelDummyI64
	if nb > 0 {
		blos, bhis = &s.los[0], &s.his[0]
		tlo, thi = &s.thrLo[0], &s.thrHi[0]
	}
	var outLo, outHi [4]float64
	var bcov [16]int64
	g := 0
	for ; g+4 <= b.n; g += 4 {
		seg := g * 4 // stride is k+2 = 4
		fuseK2AVX2(blos, bhis, nb, tlo, thi, &b.los[seg], &b.his[seg], &outLo[0], &outHi[0], &bcov[0])
		for l := 0; l < 4; l++ {
			ls := seg + l*4
			iv, o := finalizeK2(outLo[l], outHi[l],
				bcov[l], bcov[4+l], bcov[8+l], bcov[12+l],
				b.los[ls+1], b.los[ls+2], b.his[ls+1], b.his[ls+2], need)
			if out != nil {
				out[g+l] = iv
			} else {
				widths[g+l] = iv.Hi - iv.Lo
			}
			ok[g+l] = o
		}
	}
	return g
}
