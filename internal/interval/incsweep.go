package interval

// This file is the incremental half of the package's Marzullo machinery:
// Coverage (sweep.go) answers point-coverage queries over one fixed
// interval set, while Sweeper answers the attacker's inner-loop question
// — "what is the fusion interval of BASE ∪ {a few candidate intervals}?"
// — repeatedly, for one preloaded base set and many small candidate
// sets, without re-sorting or allocating per query.

// Sweeper evaluates Marzullo fusion over a fixed preloaded base set of
// intervals plus a small per-query set of extra intervals. Preload sorts
// the base endpoints once (O(n log n)); every subsequent FuseWith merges
// the 2×k endpoints of the k extra intervals into the presorted arrays
// on the fly, so each query costs O(n + k log k) with zero heap
// allocations — against the O((n+k) log (n+k)) sort or the O((n+k)^2)
// endpoint scan a from-scratch evaluation pays.
//
// This is the kernel behind the optimal attacker's plan search: the
// fixed intervals of one decision context (everything seen on the bus
// plus one imagined completion of the unseen sensors) are preloaded
// once, and every candidate placement of the attacker's own intervals
// is scored through FuseWith. The zero value is an empty base; a
// Sweeper is not safe for concurrent use.
type Sweeper struct {
	los, his []float64 // base endpoints, each sorted ascending
	// extLos/extHis hold the sorted extra endpoints of the current
	// query, reused across queries.
	extLos, extHis []float64
	// slos/shis are the sentinel-guarded copies of los/his the batch
	// kernel (batch.go) walks; sclean marks them current. Rebuilt
	// lazily by ensureSentinels after any base mutation.
	slos, shis []float64
	sclean     bool
	// thrLo/thrHi are the lane kernels' qualification tables (kernel.go):
	// a base endpoint qualifies for the fusion extremes iff the candidate
	// coverage contribution d there satisfies d > thr. Valid for coverage
	// threshold kneed; kclean marks them current. Rebuilt lazily by
	// ensureKernelTables after any base mutation or need change.
	thrLo, thrHi []int64
	kclean       bool
	kneed        int
}

// Preload replaces the base set with ivs, reusing internal buffers.
// Invalid intervals (Lo > Hi) must not be passed.
func (s *Sweeper) Preload(ivs []Interval) {
	s.sclean = false
	s.kclean = false
	s.los = s.los[:0]
	s.his = s.his[:0]
	for _, iv := range ivs {
		s.los = InsertSorted(s.los, iv.Lo)
		s.his = InsertSorted(s.his, iv.Hi)
	}
}

// Add appends one interval to the base set without a full Preload.
func (s *Sweeper) Add(iv Interval) {
	s.sclean = false
	s.kclean = false
	s.los = InsertSorted(s.los, iv.Lo)
	s.his = InsertSorted(s.his, iv.Hi)
}

// Len returns the number of base intervals.
func (s *Sweeper) Len() int { return len(s.los) }

// InsertSorted appends x to a sorted slice and bubbles it into place,
// keeping the slice sorted. The endpoint sets of this package's hot
// paths are small (the paper's n is single-digit), so binary search +
// copy would only add constants; a backward scan is exact and
// branch-cheap. The attacker's plan search shares it to build the
// sorted candidate-endpoint slices FuseWithSorted consumes.
func InsertSorted(sorted []float64, x float64) []float64 {
	sorted = append(sorted, x)
	for i := len(sorted) - 1; i > 0 && sorted[i-1] > x; i-- {
		sorted[i-1], sorted[i] = sorted[i], sorted[i-1]
	}
	return sorted
}

// FuseWith returns the Marzullo fusion interval of base ∪ extra with
// fault bound f over the combined n = Len()+len(extra) intervals: the
// span from the smallest point covered by at least n-f of them to the
// largest such point. ok is false when no point reaches that coverage
// (the condition fusion.ErrNoFusion reports) or when f is out of range.
// The result is bit-identical to fusion.Fuse over the
// concatenated slice — the differential tests in internal/fusion pin
// that equivalence on random inputs.
func (s *Sweeper) FuseWith(extra []Interval, f int) (Interval, bool) {
	s.extLos = s.extLos[:0]
	s.extHis = s.extHis[:0]
	for _, iv := range extra {
		s.extLos = InsertSorted(s.extLos, iv.Lo)
		s.extHis = InsertSorted(s.extHis, iv.Hi)
	}
	return s.fuseSorted(s.extLos, s.extHis, f)
}

// FuseWithSorted is FuseWith for callers that already hold the extra
// endpoints in two ascending-sorted slices — the attacker scores one
// candidate placement against hundreds of preloaded worlds and sorts
// the candidate's endpoints once, not once per world.
func (s *Sweeper) FuseWithSorted(extLos, extHis []float64, f int) (Interval, bool) {
	return s.fuseSorted(extLos, extHis, f)
}

// fuseSorted runs the merged two-pointer endpoint scan. Coverage of a
// point x by closed intervals is #{Lo <= x} - #{Hi < x}; it rises only
// at Lo endpoints and falls only past Hi endpoints, so the extremes of
// the (n-f)-covered set are a Lo endpoint (minimum) and a Hi endpoint
// (maximum) — the same invariant fusion.Fuser's scan uses, here walked
// over the implicit merge of the presorted base and extra arrays.
func (s *Sweeper) fuseSorted(extLos, extHis []float64, f int) (Interval, bool) {
	n := len(s.los) + len(extLos)
	need := n - f
	if n == 0 || f < 0 || need <= 0 {
		return Interval{}, false
	}
	lo, haveLo := 0.0, false
	// Ascending scan over the merged Lo endpoints; bj/ej track how many
	// base/extra Hi endpoints lie strictly below the current point.
	bi, ei, bj, ej := 0, 0, 0, 0
	for c := 0; c < n; c++ {
		var x float64
		if bi < len(s.los) && (ei >= len(extLos) || s.los[bi] <= extLos[ei]) {
			x = s.los[bi]
			bi++
		} else {
			x = extLos[ei]
			ei++
		}
		for bj < len(s.his) && s.his[bj] < x {
			bj++
		}
		for ej < len(extHis) && extHis[ej] < x {
			ej++
		}
		if (c+1)-(bj+ej) >= need {
			lo, haveLo = x, true
			break
		}
	}
	if !haveLo {
		return Interval{}, false
	}
	// Descending scan over the merged Hi endpoints; bj/ej now track how
	// many base/extra Lo endpoints lie strictly above the current point.
	hi := 0.0
	bi, ei = len(s.his)-1, len(extHis)-1
	bj, ej = len(s.los)-1, len(extLos)-1
	for c := 0; c < n; c++ {
		var x float64
		if bi >= 0 && (ei < 0 || s.his[bi] >= extHis[ei]) {
			x = s.his[bi]
			bi--
		} else {
			x = extHis[ei]
			ei--
		}
		for bj >= 0 && s.los[bj] > x {
			bj--
		}
		for ej >= 0 && extLos[ej] > x {
			ej--
		}
		// Coverage at x is #{Lo <= x} - #{Hi < x}. Los <= x is exactly
		// (bj+1)+(ej+1); the c+1 His consumed so far are all >= x, so
		// #{Hi < x} <= n-(c+1), making the condition a lower bound on
		// coverage that never overestimates. It is exact at the
		// lowest-index copy of each distinct x, which the scan reaches
		// before moving to the next value — the same duplicate handling
		// as fusion.Fuser's reverse scan.
		if (bj+1+ej+1)-(n-(c+1)) >= need {
			hi = x
			break
		}
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// WidthWith returns the width of FuseWith's fusion interval — the
// attacker's objective |S_{N,f}| for one candidate placement.
func (s *Sweeper) WidthWith(extra []Interval, f int) (float64, bool) {
	iv, ok := s.FuseWith(extra, f)
	if !ok {
		return 0, false
	}
	return iv.Width(), true
}
