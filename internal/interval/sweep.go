package interval

import "sort"

// Coverage answers "how many of a fixed set of intervals contain x?"
// queries and the inverse question Marzullo's algorithm needs: the span of
// points covered by at least k intervals.
//
// It is built once from a slice of intervals (O(n log n)) and then
// answers queries in O(log n). The structure is immutable after Build.
type Coverage struct {
	// xs are the distinct event coordinates in ascending order; counts[k]
	// is the number of intervals covering points in [xs[k], next event).
	// Because intervals are closed, the count *at* an event coordinate is
	// stored separately in atCounts (endpoint touching counts as covered).
	xs       []float64
	between  []int // coverage on the open segment (xs[k], xs[k+1]); len = len(xs)-1
	atCounts []int // coverage exactly at xs[k]; len = len(xs)
	n        int
}

// BuildCoverage constructs the coverage structure for ivs. Invalid
// intervals (Lo > Hi) must not be passed; they would corrupt the counts.
func BuildCoverage(ivs []Interval) *Coverage {
	type event struct {
		x     float64
		delta int // +1 open, -1 close (applied after the point)
	}
	// Collect distinct coordinates.
	coords := make([]float64, 0, 2*len(ivs))
	for _, iv := range ivs {
		coords = append(coords, iv.Lo, iv.Hi)
	}
	sort.Float64s(coords)
	xs := coords[:0]
	for k, x := range coords {
		if k == 0 || x != xs[len(xs)-1] {
			xs = append(xs, x)
		}
	}
	xs = append([]float64(nil), xs...) // detach from coords' backing array

	cov := &Coverage{
		xs:       xs,
		between:  make([]int, maxInt(len(xs)-1, 0)),
		atCounts: make([]int, len(xs)),
		n:        len(ivs),
	}
	// openDelta[k]: intervals whose Lo == xs[k]; closeDelta[k]: Hi == xs[k].
	openDelta := make([]int, len(xs))
	closeDelta := make([]int, len(xs))
	for _, iv := range ivs {
		openDelta[cov.indexOf(iv.Lo)]++
		closeDelta[cov.indexOf(iv.Hi)]++
	}
	running := 0 // number of intervals covering the open segment before xs[k]
	for k := range xs {
		// At the point xs[k]: everything still open, plus those opening
		// here, plus those closing here (closed intervals include Hi).
		cov.atCounts[k] = running + openDelta[k]
		running += openDelta[k] - closeDelta[k]
		if k < len(cov.between) {
			cov.between[k] = running
		}
	}
	return cov
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (c *Coverage) indexOf(x float64) int {
	k := sort.SearchFloat64s(c.xs, x)
	return k
}

// N returns the number of intervals the structure was built from.
func (c *Coverage) N() int { return c.n }

// At returns the number of intervals containing x.
func (c *Coverage) At(x float64) int {
	if len(c.xs) == 0 {
		return 0
	}
	k := sort.SearchFloat64s(c.xs, x)
	if k < len(c.xs) && c.xs[k] == x {
		return c.atCounts[k]
	}
	// x lies strictly between xs[k-1] and xs[k] (or outside the hull).
	if k == 0 || k == len(c.xs) {
		return 0
	}
	return c.between[k-1]
}

// Span returns the smallest and largest points covered by at least k
// intervals. ok is false when no point reaches coverage k.
//
// This is exactly the fusion interval primitive: Marzullo's fusion
// interval for fault bound f over n intervals is Span(n-f). Note the
// result is the convex hull of the k-covered set; points strictly inside
// may have lower coverage.
func (c *Coverage) Span(k int) (Interval, bool) {
	if k <= 0 || len(c.xs) == 0 {
		return Interval{}, false
	}
	lo, foundLo := 0.0, false
	for idx := 0; idx < len(c.xs); idx++ {
		if c.atCounts[idx] >= k {
			lo, foundLo = c.xs[idx], true
			break
		}
		// Open segments cannot exceed the counts at their bounding
		// endpoints for closed intervals, so checking event points
		// suffices: coverage on (xs[i], xs[i+1]) is <= atCounts at both
		// ends (every interval covering the open segment covers both
		// endpoints of the segment).
	}
	if !foundLo {
		return Interval{}, false
	}
	hi := 0.0
	for idx := len(c.xs) - 1; idx >= 0; idx-- {
		if c.atCounts[idx] >= k {
			hi = c.xs[idx]
			break
		}
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// MaxCoverage returns the maximum number of intervals containing any
// single point (0 for an empty set).
func (c *Coverage) MaxCoverage() int {
	best := 0
	for _, v := range c.atCounts {
		if v > best {
			best = v
		}
	}
	return best
}

// Events returns the distinct endpoint coordinates in ascending order.
// The slice is shared; callers must not modify it.
func (c *Coverage) Events() []float64 { return c.xs }

// MaxCoverageOn returns the maximum coverage attained at any point of the
// window w. Because coverage is piecewise constant between events and can
// only spike at event points, it suffices to check the window endpoints
// and every event inside the window.
func (c *Coverage) MaxCoverageOn(w Interval) int {
	best := c.At(w.Lo)
	if v := c.At(w.Hi); v > best {
		best = v
	}
	lo := sort.SearchFloat64s(c.xs, w.Lo)
	for k := lo; k < len(c.xs) && c.xs[k] <= w.Hi; k++ {
		if c.atCounts[k] > best {
			best = c.atCounts[k]
		}
	}
	return best
}
