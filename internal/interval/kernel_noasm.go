//go:build !amd64 || purego

package interval

// Non-amd64 (and purego) builds carry no assembly kernel: the runtime
// dispatch falls back to the generic merge kernel, with the unrolled
// pure-Go lane kernel selectable via SENSORFUSION_KERNEL/SetKernel.

// haveAVX2 is false without the amd64 assembly build.
const haveAVX2 = false

// defaultKernel selects the startup kernel: generic, the proven
// branch-lean merge, everywhere the vector kernel cannot run.
func defaultKernel() kernelKind { return kernelGeneric }

// fuseLanesAVX2 is never reachable here (kernelAVX2 is not available),
// but the dispatch in fuseBatchLanes still links against it.
func (s *Sweeper) fuseLanesAVX2(b *Batch, need int, out []Interval, widths []float64, ok []bool) int {
	panic("interval: avx2 kernel unavailable in this build")
}
