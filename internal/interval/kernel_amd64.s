//go:build amd64 && !purego

#include "textflag.h"

// AVX2 four-lane Marzullo batch kernel, plus the CPUID/XGETBV probes
// backing the runtime dispatch (kernel_amd64.go).
//
// fuseK2AVX2 is fuseLaneK2's single pass over the base endpoint arrays
// with four k=2 candidate lanes riding each iteration. Lanes live in
// Batch's SoA layout (stride 4: -Inf sentinel, two sorted endpoints,
// +Inf sentinel); a 4x4 transpose of the four consecutive segments
// yields the per-position column vectors CLO0/CLO1 (and CHI0/CHI1 from
// the Hi segments). Comparison masks (VCMPPD, all-ones per true qword)
// are summed directly with VPADDQ/VPSUBQ, so the candidate coverage
// contribution d at a base threshold is an int64 per lane; VPCMPGTQ
// against the precomputed thrLo/thrHi tables qualifies the threshold
// and VBLENDVPD folds it into the running VMINPD/VMAXPD selection.
// Everything is comparisons and min/max — no arithmetic touches the
// endpoint values, preserving bit-identity with the scalar kernels.
//
// Register plan (persistent across the loop):
//	Y4-Y7   CLO0, CLO1, CHI0, CHI1 (candidate endpoint columns)
//	Y8, Y9  running lo (init +Inf) and hi (init -Inf) selections
//	Y10-Y13 base coverage accumulators at CLO0, CLO1, CHI0, CHI1
//	Y0, Y1  broadcast blos[i], bhis[i]; Y2, Y3, Y14, Y15 scratch

DATA kposinf<>+0(SB)/8, $0x7FF0000000000000
GLOBL kposinf<>(SB), RODATA|NOPTR, $8
DATA kneginf<>+0(SB)/8, $0xFFF0000000000000
GLOBL kneginf<>(SB), RODATA|NOPTR, $8

// func fuseK2AVX2(blos, bhis *float64, nb int, thrLo, thrHi *int64,
//	clos, chis *float64, outLo, outHi *float64, bcov *int64)
TEXT ·fuseK2AVX2(SB), NOSPLIT, $0-80
	MOVQ blos+0(FP), SI
	MOVQ bhis+8(FP), DI
	MOVQ nb+16(FP), CX
	MOVQ thrLo+24(FP), R8
	MOVQ thrHi+32(FP), R9
	MOVQ clos+40(FP), R10
	MOVQ chis+48(FP), R11

	// Transpose the four Lo segments: columns 1 and 2 are the sorted
	// candidate Lo endpoints (columns 0 and 3 are the sentinels).
	VMOVUPD (R10), Y0
	VMOVUPD 32(R10), Y1
	VMOVUPD 64(R10), Y2
	VMOVUPD 96(R10), Y3
	VUNPCKHPD Y1, Y0, Y14       // [l0[1] l1[1] l0[3] l1[3]]
	VUNPCKHPD Y3, Y2, Y15       // [l2[1] l3[1] l2[3] l3[3]]
	VPERM2F128 $0x20, Y15, Y14, Y4 // CLO0 = column 1
	VUNPCKLPD Y1, Y0, Y14       // [l0[0] l1[0] l0[2] l1[2]]
	VUNPCKLPD Y3, Y2, Y15       // [l2[0] l3[0] l2[2] l3[2]]
	VPERM2F128 $0x31, Y15, Y14, Y5 // CLO1 = column 2

	// Same transpose for the four Hi segments.
	VMOVUPD (R11), Y0
	VMOVUPD 32(R11), Y1
	VMOVUPD 64(R11), Y2
	VMOVUPD 96(R11), Y3
	VUNPCKHPD Y1, Y0, Y14
	VUNPCKHPD Y3, Y2, Y15
	VPERM2F128 $0x20, Y15, Y14, Y6 // CHI0
	VUNPCKLPD Y1, Y0, Y14
	VUNPCKLPD Y3, Y2, Y15
	VPERM2F128 $0x31, Y15, Y14, Y7 // CHI1

	VBROADCASTSD kposinf<>(SB), Y8 // lo selection: +Inf = nothing yet
	VBROADCASTSD kneginf<>(SB), Y9 // hi selection: -Inf = nothing yet
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13

	TESTQ CX, CX
	JZ   store

loop:
	VBROADCASTSD (SI), Y0 // xl = blos[i]
	VBROADCASTSD (DI), Y1 // xh = bhis[i]
	ADDQ $8, SI
	ADDQ $8, DI

	// Part A, lo: d = [CLO0<=xl] + [CLO1<=xl] - [CHI0<xl] - [CHI1<xl];
	// qualify d > thrLo[i], then fold xl into the min selection.
	VPXOR Y2, Y2, Y2
	VCMPPD $0x12, Y0, Y4, Y3 // CLO0 <= xl (LE_OQ)
	VPSUBQ Y3, Y2, Y2
	VCMPPD $0x12, Y0, Y5, Y3 // CLO1 <= xl
	VPSUBQ Y3, Y2, Y2
	VCMPPD $0x11, Y0, Y6, Y3 // CHI0 < xl (LT_OQ)
	VPADDQ Y3, Y2, Y2
	VCMPPD $0x11, Y0, Y7, Y3 // CHI1 < xl
	VPADDQ Y3, Y2, Y2
	VPBROADCASTQ (R8), Y3    // thrLo[i]
	ADDQ $8, R8
	VPCMPGTQ Y3, Y2, Y2      // qual = d > thr
	VMINPD Y0, Y8, Y3
	VBLENDVPD Y2, Y3, Y8, Y8

	// Part A, hi: same with xh, thrHi, and the max selection.
	VPXOR Y2, Y2, Y2
	VCMPPD $0x12, Y1, Y4, Y3
	VPSUBQ Y3, Y2, Y2
	VCMPPD $0x12, Y1, Y5, Y3
	VPSUBQ Y3, Y2, Y2
	VCMPPD $0x11, Y1, Y6, Y3
	VPADDQ Y3, Y2, Y2
	VCMPPD $0x11, Y1, Y7, Y3
	VPADDQ Y3, Y2, Y2
	VPBROADCASTQ (R9), Y3
	ADDQ $8, R9
	VPCMPGTQ Y3, Y2, Y2
	VMAXPD Y1, Y9, Y3
	VBLENDVPD Y2, Y3, Y9, Y9

	// Part B: bcov(T) += [xl <= T] - [xh < T] at the four candidate
	// thresholds (subtracting an all-ones mask adds 1).
	VCMPPD $0x12, Y4, Y0, Y3 // xl <= CLO0
	VPSUBQ Y3, Y10, Y10
	VCMPPD $0x11, Y4, Y1, Y3 // xh < CLO0
	VPADDQ Y3, Y10, Y10
	VCMPPD $0x12, Y5, Y0, Y3
	VPSUBQ Y3, Y11, Y11
	VCMPPD $0x11, Y5, Y1, Y3
	VPADDQ Y3, Y11, Y11
	VCMPPD $0x12, Y6, Y0, Y3
	VPSUBQ Y3, Y12, Y12
	VCMPPD $0x11, Y6, Y1, Y3
	VPADDQ Y3, Y12, Y12
	VCMPPD $0x12, Y7, Y0, Y3
	VPSUBQ Y3, Y13, Y13
	VCMPPD $0x11, Y7, Y1, Y3
	VPADDQ Y3, Y13, Y13

	DECQ CX
	JNZ  loop

store:
	MOVQ outLo+56(FP), AX
	VMOVUPD Y8, (AX)
	MOVQ outHi+64(FP), AX
	VMOVUPD Y9, (AX)
	MOVQ bcov+72(FP), AX
	VMOVDQU Y10, (AX)
	VMOVDQU Y11, 32(AX)
	VMOVDQU Y12, 64(AX)
	VMOVDQU Y13, 96(AX)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
