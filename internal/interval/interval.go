// Package interval provides closed real intervals and the endpoint-sweep
// machinery used by Marzullo-style sensor fusion.
//
// An Interval is the abstract-sensor reading of the paper (Section
// II-B): a closed set [Lo, Hi] of all points that may be the true value
// of the measured physical variable. The package is deliberately free
// of any fusion or attack logic; it only knows geometry.
package interval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interval is a closed real interval [Lo, Hi].
//
// The zero value is the degenerate interval [0, 0], which is valid (a
// single point). An interval with Lo > Hi is invalid; constructors return
// errors instead of producing one, and Valid reports the property.
type Interval struct {
	Lo float64
	Hi float64
}

// ErrInvalid is returned when an operation would produce or was given an
// interval with Lo > Hi or a non-finite endpoint.
var ErrInvalid = errors.New("interval: invalid interval")

// New returns the interval [lo, hi]. It returns ErrInvalid if lo > hi or
// either endpoint is NaN or infinite.
func New(lo, hi float64) (Interval, error) {
	if !finite(lo) || !finite(hi) || lo > hi {
		return Interval{}, fmt.Errorf("%w: [%v, %v]", ErrInvalid, lo, hi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// MustNew is like New but panics on invalid input. It is intended for
// tests and package-level literals.
func MustNew(lo, hi float64) Interval {
	iv, err := New(lo, hi)
	if err != nil {
		panic(err)
	}
	return iv
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// Centered returns the interval of the given width centered at c:
// [c-width/2, c+width/2]. Width must be non-negative.
func Centered(c, width float64) (Interval, error) {
	if width < 0 || !finite(c) || !finite(width) {
		return Interval{}, fmt.Errorf("%w: center %v width %v", ErrInvalid, c, width)
	}
	return Interval{Lo: c - width/2, Hi: c + width/2}, nil
}

// MustCentered is like Centered but panics on invalid input.
func MustCentered(c, width float64) Interval {
	iv, err := Centered(c, width)
	if err != nil {
		panic(err)
	}
	return iv
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Valid reports whether i has finite endpoints and Lo <= Hi.
func (i Interval) Valid() bool { return finite(i.Lo) && finite(i.Hi) && i.Lo <= i.Hi }

// Width returns Hi - Lo. The paper writes |s| for this quantity.
func (i Interval) Width() float64 { return i.Hi - i.Lo }

// Center returns the midpoint (Lo+Hi)/2.
func (i Interval) Center() float64 { return (i.Lo + i.Hi) / 2 }

// Contains reports whether x lies in the closed interval.
func (i Interval) Contains(x float64) bool { return i.Lo <= x && x <= i.Hi }

// ContainsInterval reports whether o is a subset of i.
func (i Interval) ContainsInterval(o Interval) bool { return i.Lo <= o.Lo && o.Hi <= i.Hi }

// Intersects reports whether i and o share at least one point.
// Closed intervals touching at a single endpoint do intersect.
func (i Interval) Intersects(o Interval) bool { return i.Lo <= o.Hi && o.Lo <= i.Hi }

// Intersect returns the intersection of i and o. The boolean result is
// false when the intervals are disjoint, in which case the returned
// interval is the zero value.
func (i Interval) Intersect(o Interval) (Interval, bool) {
	lo := math.Max(i.Lo, o.Lo)
	hi := math.Min(i.Hi, o.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// Hull returns the smallest interval containing both i and o.
func (i Interval) Hull(o Interval) Interval {
	return Interval{Lo: math.Min(i.Lo, o.Lo), Hi: math.Max(i.Hi, o.Hi)}
}

// Translate returns i shifted by d.
func (i Interval) Translate(d float64) Interval {
	return Interval{Lo: i.Lo + d, Hi: i.Hi + d}
}

// Equal reports exact equality of endpoints.
func (i Interval) Equal(o Interval) bool { return i.Lo == o.Lo && i.Hi == o.Hi }

// ApproxEqual reports equality of endpoints within eps.
func (i Interval) ApproxEqual(o Interval, eps float64) bool {
	return math.Abs(i.Lo-o.Lo) <= eps && math.Abs(i.Hi-o.Hi) <= eps
}

// String renders the interval as "[lo, hi]".
func (i Interval) String() string { return fmt.Sprintf("[%g, %g]", i.Lo, i.Hi) }

// IntersectAll returns the intersection of all the given intervals and
// reports whether it is non-empty. With no arguments it returns false.
func IntersectAll(ivs ...Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	acc := ivs[0]
	for _, iv := range ivs[1:] {
		var ok bool
		acc, ok = acc.Intersect(iv)
		if !ok {
			return Interval{}, false
		}
	}
	return acc, true
}

// HullAll returns the convex hull of all the given intervals and reports
// whether the input was non-empty.
func HullAll(ivs ...Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	acc := ivs[0]
	for _, iv := range ivs[1:] {
		acc = acc.Hull(iv)
	}
	return acc, true
}

// PairwiseIntersect reports whether every pair among ivs intersects. Any
// set of correct intervals must satisfy this (they all contain the true
// value), so it is a cheap sanity check on generated configurations.
func PairwiseIntersect(ivs []Interval) bool {
	for a := 0; a < len(ivs); a++ {
		for b := a + 1; b < len(ivs); b++ {
			if !ivs[a].Intersects(ivs[b]) {
				return false
			}
		}
	}
	return true
}

// Widths returns the widths of ivs in order.
func Widths(ivs []Interval) []float64 {
	ws := make([]float64, len(ivs))
	for k, iv := range ivs {
		ws[k] = iv.Width()
	}
	return ws
}

// SortByWidth returns a copy of ivs sorted by ascending width, breaking
// ties by lower bound, then upper bound, so the order is deterministic.
func SortByWidth(ivs []Interval) []Interval {
	out := append([]Interval(nil), ivs...)
	sort.Slice(out, func(a, b int) bool {
		wa, wb := out[a].Width(), out[b].Width()
		if wa != wb {
			return wa < wb
		}
		if out[a].Lo != out[b].Lo {
			return out[a].Lo < out[b].Lo
		}
		return out[a].Hi < out[b].Hi
	})
	return out
}
