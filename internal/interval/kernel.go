package interval

// This file is the lane-parallel half of the batch machinery: where
// batch.go's generic kernel (fuseMerged) walks each candidate lane with
// the serial two-pointer merge, the kernels here rephrase Marzullo
// fusion as pure value selection so a lane costs one branch-free pass
// over the base endpoint arrays — and, on amd64 with AVX2, four lanes
// ride that pass at once.
//
// The reformulation: coverage of a point x by closed intervals is
// cov(x) = #{Lo <= x} - #{Hi < x}, so the fusion interval of
// base ∪ candidate with threshold need = n-f is
//
//	lo = min{x among all Lo endpoints : cov(x) >= need}
//	hi = max{x among all Hi endpoints : cov(x) >= need}
//
// and fusion exists iff some Lo qualifies. This selects the same VALUES
// as the scalar two-pointer scans (fuseSorted, fuseMerged): their
// per-pick coverage tests are lower bounds that become exact at the
// last duplicate copy of each distinct value, so a value passes the
// scan iff cov(value) >= need — and the scans stop at the extreme
// qualifying values. No arithmetic is performed on the endpoints, only
// comparisons and min/max, so the result is bit-identical; the
// differential and fuzz tests in internal/fusion pin that equivalence
// for every kernel.
//
// Splitting cov(x) at a threshold x into a base part and a candidate
// part is what makes the pass branch-free and lane-parallel:
//
//   - For a BASE endpoint threshold x = blos[i] (or bhis[i]), the base
//     part of cov(x) depends only on (base, need) and is precomputed by
//     ensureKernelTables into thrLo/thrHi: lane qualification reduces
//     to "candidate contribution d > thr[i]", where d sums four (k=2)
//     endpoint comparisons.
//   - For a CANDIDATE endpoint threshold, the base part
//     bcov(T) = #{blos <= T} - #{bhis < T} is accumulated in the same
//     pass over i, and the candidate's own contribution collapses to
//     constants by the within-lane sortedness (clo0 <= clo1,
//     chi0 <= chi1) — finalizeK2/finalizeK1 below.
//
// Kernel selection is a process-wide dispatch: "generic" (fuseMerged),
// "unrolled" (the pure-Go lane kernels here, any GOARCH), and "avx2"
// (kernel_amd64.s, four lanes per pass). The default is chosen at
// startup by CPU feature detection — AVX2 on capable amd64, the
// generic kernel everywhere else — and can be forced with the
// SENSORFUSION_KERNEL environment variable or SetKernel (tests, and
// `make bench-kernels`, force each mode for apples-to-apples runs).

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// kernelKind identifies one batch-kernel implementation.
type kernelKind uint8

const (
	kernelGeneric  kernelKind = iota // fuseMerged: serial two-pointer merge per lane
	kernelUnrolled                   // pure-Go branch-free lane kernel (k <= 2)
	kernelAVX2                       // amd64 assembly, 4 lanes per pass (k == 2)
)

var kernelNameTab = [...]string{"generic", "unrolled", "avx2"}

// activeKernel is the process-wide batch-kernel selection. It is read
// on every FuseBatch/ScoreBatch call and written only by SetKernel (and
// the startup default); like the Sweeper itself it is not synchronized,
// so tests that force kernels must not run concurrent batch calls.
var activeKernel = defaultKernel()

func init() {
	if name := os.Getenv("SENSORFUSION_KERNEL"); name != "" {
		// An unknown or unavailable name keeps the detected default, so
		// e.g. SENSORFUSION_KERNEL=avx2 is harmless on arm64 and
		// `make bench-kernels` can sweep every mode everywhere.
		_ = SetKernel(name)
	}
}

// kernelAvailable reports whether kind can run in this build on this
// CPU. generic and unrolled are portable; avx2 needs the amd64 assembly
// build (no purego tag) and runtime AVX2+OSXSAVE support.
func kernelAvailable(kind kernelKind) bool {
	switch kind {
	case kernelGeneric, kernelUnrolled:
		return true
	case kernelAVX2:
		return haveAVX2
	}
	return false
}

// KernelNames returns the batch-kernel implementations available in
// this build on this CPU, in dispatch-preference order.
func KernelNames() []string {
	names := make([]string, 0, len(kernelNameTab))
	for k, n := range kernelNameTab {
		if kernelAvailable(kernelKind(k)) {
			names = append(names, n)
		}
	}
	return names
}

// KernelName returns the name of the currently selected batch kernel.
func KernelName() string { return kernelNameTab[activeKernel] }

// SetKernel selects the batch kernel by name ("generic", "unrolled",
// "avx2"), overriding the CPU-detected default. It fails when the name
// is unknown or the kernel is unavailable on this CPU/build; the
// selection is process-wide and not synchronized with running batch
// calls. The SENSORFUSION_KERNEL environment variable applies the same
// selection at startup.
func SetKernel(name string) error {
	for k, n := range kernelNameTab {
		if n != name {
			continue
		}
		if !kernelAvailable(kernelKind(k)) {
			return fmt.Errorf("interval: kernel %q not available on this CPU/build", name)
		}
		activeKernel = kernelKind(k)
		return nil
	}
	return fmt.Errorf("interval: unknown kernel %q (available: %s)", name, strings.Join(KernelNames(), ", "))
}

// ensureKernelTables (re)builds the per-(base, need) qualification
// thresholds the lane kernels compare against: for each base endpoint
// threshold x = s.los[i] (resp. s.his[i]), the EXACT base-only coverage
// cov_base(x) = #{blos <= x} - #{bhis < x} is computed by one
// two-pointer pass over the sorted arrays (duplicate runs share their
// exact count), and stored as
//
//	thrLo[i] = need - cov_base(s.los[i]) - 1
//	thrHi[i] = need - cov_base(s.his[i]) - 1
//
// so a lane's candidate contribution d qualifies the threshold iff
// d > thr[i] (a single signed compare — the form the AVX2 kernel's
// VPCMPGTQ wants). Cached like the sentinel arrays, invalidated by
// Preload/Add, and additionally keyed on need, which varies per call.
func (s *Sweeper) ensureKernelTables(need int) {
	if s.kclean && s.kneed == need {
		return
	}
	nb := len(s.los)
	if cap(s.thrLo) < nb {
		s.thrLo = make([]int64, nb)
		s.thrHi = make([]int64, nb)
	}
	s.thrLo = s.thrLo[:nb]
	s.thrHi = s.thrHi[:nb]
	j := 0 // #{bhis < x}
	for i := 0; i < nb; {
		x := s.los[i]
		r := i
		for r+1 < nb && s.los[r+1] == x {
			r++
		}
		for j < nb && s.his[j] < x {
			j++
		}
		thr := int64(need - ((r + 1) - j) - 1)
		for ; i <= r; i++ {
			s.thrLo[i] = thr
		}
	}
	j = 0 // #{blos <= x}
	for i := 0; i < nb; {
		x := s.his[i]
		r := i
		for r+1 < nb && s.his[r+1] == x {
			r++
		}
		for j < nb && s.los[j] <= x {
			j++
		}
		// #{bhis < x} is i, the first index of this duplicate run.
		thr := int64(need - (j - i) - 1)
		for ; i <= r; i++ {
			s.thrHi[i] = thr
		}
	}
	s.kclean = true
	s.kneed = need
}

// fuseBatchLanes scores every lane of b through the lane kernels.
// Exactly one of out (FuseBatch) and widths (ScoreBatch) is non-nil.
// Only k == 1 and k == 2 route here (the shapes of every hot path);
// the AVX2 kernel additionally requires k == 2 and handles lanes in
// groups of four, leaving the remainder to the unrolled kernel.
func (s *Sweeper) fuseBatchLanes(b *Batch, need int, out []Interval, widths []float64, ok []bool) {
	s.ensureKernelTables(need)
	i := 0
	if activeKernel == kernelAVX2 && b.k == 2 {
		i = s.fuseLanesAVX2(b, need, out, widths, ok)
	}
	stride := b.k + 2
	for ; i < b.n; i++ {
		seg := i * stride
		var iv Interval
		var o bool
		if b.k == 2 {
			iv, o = s.fuseLaneK2(b.los[seg+1], b.los[seg+2], b.his[seg+1], b.his[seg+2], need)
		} else {
			iv, o = s.fuseLaneK1(b.los[seg+1], b.his[seg+1], need)
		}
		if out != nil {
			out[i] = iv
		} else {
			widths[i] = iv.Hi - iv.Lo
		}
		ok[i] = o
	}
}

const (
	posInfBits = 0x7FF0000000000000 // math.Float64bits(+Inf)
	negInfBits = 0xFFF0000000000000 // math.Float64bits(-Inf)
)

// b2i64 returns 1 for true and 0 for false; the compiler lowers it to a
// flag materialization (SETcc), not a branch.
func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// condMin returns min(acc, x) when qual is 1 and acc when qual is 0,
// without a data-dependent branch: the mask substitutes +Inf (the min
// identity) for disqualified values.
func condMin(acc, x float64, qual int64) float64 {
	m := uint64(-qual)
	return min(acc, math.Float64frombits(math.Float64bits(x)&m|posInfBits&^m))
}

// condMax is condMin's mirror with -Inf as the max identity.
func condMax(acc, x float64, qual int64) float64 {
	m := uint64(-qual)
	return max(acc, math.Float64frombits(math.Float64bits(x)&m|negInfBits&^m))
}

// fuseLaneK2 fuses base ∪ {[clo0,chi0'], [clo1,chi1']} where
// (clo0, clo1) and (chi0, chi1) are the candidate's Lo and Hi endpoints
// each sorted ascending (the Batch layout — the pairing between Lo and
// Hi values is irrelevant to coverage). One pass over the base arrays
// evaluates every base-endpoint threshold branch-free (Part A) and
// accumulates the base coverage at the four candidate-endpoint
// thresholds (Part B); finalizeK2 closes the candidate thresholds.
func (s *Sweeper) fuseLaneK2(clo0, clo1, chi0, chi1 float64, need int) (Interval, bool) {
	blos := s.los
	bhis := s.his[:len(blos)]
	tlo := s.thrLo[:len(blos)]
	thi := s.thrHi[:len(blos)]
	lo, hi := math.Inf(1), math.Inf(-1)
	var bc0, bc1, bc2, bc3 int64 // bcov at clo0, clo1, chi0, chi1
	for i := 0; i < len(blos); i++ {
		xl, xh := blos[i], bhis[i]
		// Part A: candidate contribution to cov at the base thresholds.
		dl := b2i64(clo0 <= xl) + b2i64(clo1 <= xl) - b2i64(chi0 < xl) - b2i64(chi1 < xl)
		lo = condMin(lo, xl, b2i64(dl > tlo[i]))
		dh := b2i64(clo0 <= xh) + b2i64(clo1 <= xh) - b2i64(chi0 < xh) - b2i64(chi1 < xh)
		hi = condMax(hi, xh, b2i64(dh > thi[i]))
		// Part B: base contribution to cov at the candidate thresholds.
		bc0 += b2i64(xl <= clo0) - b2i64(xh < clo0)
		bc1 += b2i64(xl <= clo1) - b2i64(xh < clo1)
		bc2 += b2i64(xl <= chi0) - b2i64(xh < chi0)
		bc3 += b2i64(xl <= chi1) - b2i64(xh < chi1)
	}
	return finalizeK2(lo, hi, bc0, bc1, bc2, bc3, clo0, clo1, chi0, chi1, need)
}

// finalizeK2 merges the candidate-endpoint thresholds into the running
// (lo, hi) selection and reports the lane result. The candidate's own
// contribution at each of its endpoints reduces by sortedness
// (clo0 <= clo1, chi0 <= chi1): e.g. at T = clo1 both Lo endpoints
// count, and at T = chi0 no candidate Hi lies strictly below. A lane
// with no qualifying Lo endpoint has empty fusion (and then no Hi
// qualifies either); lo keeps +Inf in that case, which no finite
// endpoint can be, so it doubles as the ok flag.
func finalizeK2(lo, hi float64, bc0, bc1, bc2, bc3 int64, clo0, clo1, chi0, chi1 float64, need int) (Interval, bool) {
	n64 := int64(need)
	if bc0+1+b2i64(clo1 <= clo0)-b2i64(chi0 < clo0)-b2i64(chi1 < clo0) >= n64 && clo0 < lo {
		lo = clo0
	}
	if bc1+2-b2i64(chi0 < clo1)-b2i64(chi1 < clo1) >= n64 && clo1 < lo {
		lo = clo1
	}
	if bc2+b2i64(clo0 <= chi0)+b2i64(clo1 <= chi0) >= n64 && chi0 > hi {
		hi = chi0
	}
	if bc3+b2i64(clo0 <= chi1)+b2i64(clo1 <= chi1)-b2i64(chi0 < chi1) >= n64 && chi1 > hi {
		hi = chi1
	}
	if lo > math.MaxFloat64 { // lo == +Inf: nothing qualified
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// fuseLaneK1 is fuseLaneK2 for a single candidate interval [clo0, chi0].
func (s *Sweeper) fuseLaneK1(clo0, chi0 float64, need int) (Interval, bool) {
	blos := s.los
	bhis := s.his[:len(blos)]
	tlo := s.thrLo[:len(blos)]
	thi := s.thrHi[:len(blos)]
	lo, hi := math.Inf(1), math.Inf(-1)
	var bc0, bc1 int64 // bcov at clo0, chi0
	for i := 0; i < len(blos); i++ {
		xl, xh := blos[i], bhis[i]
		dl := b2i64(clo0 <= xl) - b2i64(chi0 < xl)
		lo = condMin(lo, xl, b2i64(dl > tlo[i]))
		dh := b2i64(clo0 <= xh) - b2i64(chi0 < xh)
		hi = condMax(hi, xh, b2i64(dh > thi[i]))
		bc0 += b2i64(xl <= clo0) - b2i64(xh < clo0)
		bc1 += b2i64(xl <= chi0) - b2i64(xh < chi0)
	}
	n64 := int64(need)
	if bc0+1 >= n64 && clo0 < lo { // own interval covers its Lo; chi0 >= clo0 never counts below it
		lo = clo0
	}
	if bc1+b2i64(clo0 <= chi0) >= n64 && chi0 > hi {
		hi = chi0
	}
	if lo > math.MaxFloat64 {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}
