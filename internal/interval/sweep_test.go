package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverageAt(t *testing.T) {
	ivs := []Interval{
		MustNew(0, 10),
		MustNew(2, 4),
		MustNew(4, 8),
		MustNew(4, 4), // point interval at an event coordinate
	}
	cov := BuildCoverage(ivs)
	tests := []struct {
		x    float64
		want int
	}{
		{-1, 0},
		{0, 1},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 4}, // [0,10], [2,4], [4,8], [4,4] all contain 4
		{5, 2},
		{8, 2},
		{9, 1},
		{10, 1},
		{11, 0},
	}
	for _, tc := range tests {
		if got := cov.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if cov.N() != 4 {
		t.Errorf("N = %d, want 4", cov.N())
	}
	if got := cov.MaxCoverage(); got != 4 {
		t.Errorf("MaxCoverage = %d, want 4", got)
	}
}

func TestCoverageSpanPaperFigure1(t *testing.T) {
	// Five intervals shaped like the paper's Fig. 1 discussion: with f=0
	// the fusion is the intersection, with growing f the span widens.
	ivs := []Interval{
		MustNew(0, 6),
		MustNew(1, 4),
		MustNew(2, 7),
		MustNew(3, 9),
		MustNew(3.5, 5),
	}
	cov := BuildCoverage(ivs)
	// f=0 -> k=5: intersection is [3.5, 4].
	s, ok := cov.Span(5)
	if !ok || !s.Equal(MustNew(3.5, 4)) {
		t.Fatalf("Span(5) = %v, %v, want [3.5,4]", s, ok)
	}
	// f=4 -> k=1: hull of everything.
	s, ok = cov.Span(1)
	if !ok || !s.Equal(MustNew(0, 9)) {
		t.Fatalf("Span(1) = %v, %v, want [0,9]", s, ok)
	}
	// Monotonicity in k.
	prev := MustNew(0, 9)
	for k := 1; k <= 5; k++ {
		s, ok := cov.Span(k)
		if !ok {
			t.Fatalf("Span(%d) should exist", k)
		}
		if !prev.ContainsInterval(s) {
			t.Fatalf("Span(%d) = %v not contained in Span(%d) = %v", k, s, k-1, prev)
		}
		prev = s
	}
}

func TestCoverageSpanEmpty(t *testing.T) {
	ivs := []Interval{MustNew(0, 1), MustNew(5, 6)}
	cov := BuildCoverage(ivs)
	if _, ok := cov.Span(2); ok {
		t.Fatal("no point is covered twice")
	}
	if s, ok := cov.Span(1); !ok || !s.Equal(MustNew(0, 6)) {
		t.Fatalf("Span(1) = %v, %v", s, ok)
	}
	if _, ok := cov.Span(0); ok {
		t.Fatal("Span(0) must be rejected")
	}
	if _, ok := cov.Span(3); ok {
		t.Fatal("k > n can never be covered")
	}
}

func TestCoverageEmptyInput(t *testing.T) {
	cov := BuildCoverage(nil)
	if cov.At(0) != 0 || cov.MaxCoverage() != 0 {
		t.Fatal("empty coverage should be all zeros")
	}
	if _, ok := cov.Span(1); ok {
		t.Fatal("empty coverage has no span")
	}
}

func TestCoverageDuplicateIntervals(t *testing.T) {
	ivs := []Interval{MustNew(1, 3), MustNew(1, 3), MustNew(1, 3)}
	cov := BuildCoverage(ivs)
	if got := cov.At(2); got != 3 {
		t.Fatalf("At(2) = %d, want 3", got)
	}
	s, ok := cov.Span(3)
	if !ok || !s.Equal(MustNew(1, 3)) {
		t.Fatalf("Span(3) = %v, %v", s, ok)
	}
}

func TestCoverageTouchingEndpoints(t *testing.T) {
	// [0,2] and [2,4] touch at 2: coverage at exactly 2 is 2.
	ivs := []Interval{MustNew(0, 2), MustNew(2, 4)}
	cov := BuildCoverage(ivs)
	if got := cov.At(2); got != 2 {
		t.Fatalf("At(2) = %d, want 2", got)
	}
	s, ok := cov.Span(2)
	if !ok || !s.Equal(Point(2)) {
		t.Fatalf("Span(2) = %v, %v, want the single point [2,2]", s, ok)
	}
}

// naiveAt is an independent O(n) implementation of coverage counting.
func naiveAt(ivs []Interval, x float64) int {
	c := 0
	for _, iv := range ivs {
		if iv.Contains(x) {
			c++
		}
	}
	return c
}

// naiveSpan scans all endpoints to find the k-covered span.
func naiveSpan(ivs []Interval, k int) (Interval, bool) {
	var lo, hi float64
	found := false
	for _, iv := range ivs {
		for _, x := range [2]float64{iv.Lo, iv.Hi} {
			if naiveAt(ivs, x) < k {
				continue
			}
			if !found {
				lo, hi, found = x, x, true
				continue
			}
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	if !found || k <= 0 {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

func TestCoverageAgainstNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		ivs := make([]Interval, n)
		for k := range ivs {
			lo := float64(rng.Intn(21) - 10)
			w := float64(rng.Intn(10))
			ivs[k] = Interval{Lo: lo, Hi: lo + w}
		}
		cov := BuildCoverage(ivs)
		// Check At on a grid denser than the integer endpoints.
		for x := -12.0; x <= 22.0; x += 0.5 {
			if got, want := cov.At(x), naiveAt(ivs, x); got != want {
				t.Fatalf("trial %d: At(%v) = %d, want %d (ivs %v)", trial, x, got, want, ivs)
			}
		}
		for k := 1; k <= n; k++ {
			gs, gok := cov.Span(k)
			ns, nok := naiveSpan(ivs, k)
			if gok != nok || (gok && !gs.Equal(ns)) {
				t.Fatalf("trial %d: Span(%d) = %v,%v want %v,%v (ivs %v)", trial, k, gs, gok, ns, nok, ivs)
			}
		}
	}
}

// Property: coverage at any point never exceeds n, and Span(k) endpoints
// are themselves covered k times.
func TestQuickSpanEndpointsCovered(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 8 {
			seeds = seeds[:8]
		}
		ivs := make([]Interval, len(seeds))
		for k, s := range seeds {
			lo := float64(int(s)%17) - 8
			w := float64(int(s) % 5)
			ivs[k] = Interval{Lo: lo, Hi: lo + w}
		}
		cov := BuildCoverage(ivs)
		for k := 1; k <= len(ivs); k++ {
			s, ok := cov.Span(k)
			if !ok {
				continue
			}
			if cov.At(s.Lo) < k || cov.At(s.Hi) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
