package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  float64
		wantErr bool
	}{
		{"ordinary", 1, 2, false},
		{"point", 3, 3, false},
		{"negative", -5, -1, false},
		{"crossing zero", -1, 1, false},
		{"inverted", 2, 1, true},
		{"nan lo", math.NaN(), 1, true},
		{"nan hi", 0, math.NaN(), true},
		{"inf lo", math.Inf(-1), 0, true},
		{"inf hi", 0, math.Inf(1), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			iv, err := New(tc.lo, tc.hi)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%v, %v) err = %v, wantErr %v", tc.lo, tc.hi, err, tc.wantErr)
			}
			if err == nil && (iv.Lo != tc.lo || iv.Hi != tc.hi) {
				t.Fatalf("New(%v, %v) = %v", tc.lo, tc.hi, iv)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(2, 1) did not panic")
		}
	}()
	MustNew(2, 1)
}

func TestCentered(t *testing.T) {
	iv := MustCentered(10, 4)
	if iv.Lo != 8 || iv.Hi != 12 {
		t.Fatalf("MustCentered(10, 4) = %v, want [8, 12]", iv)
	}
	if _, err := Centered(0, -1); err == nil {
		t.Fatal("Centered with negative width should fail")
	}
	p := Point(7)
	if p.Lo != 7 || p.Hi != 7 || p.Width() != 0 {
		t.Fatalf("Point(7) = %v", p)
	}
}

func TestWidthCenter(t *testing.T) {
	iv := MustNew(2, 8)
	if got := iv.Width(); got != 6 {
		t.Fatalf("Width = %v, want 6", got)
	}
	if got := iv.Center(); got != 5 {
		t.Fatalf("Center = %v, want 5", got)
	}
}

func TestContains(t *testing.T) {
	iv := MustNew(1, 3)
	for _, x := range []float64{1, 2, 3} {
		if !iv.Contains(x) {
			t.Errorf("[1,3] should contain %v", x)
		}
	}
	for _, x := range []float64{0.999, 3.001, -10} {
		if iv.Contains(x) {
			t.Errorf("[1,3] should not contain %v", x)
		}
	}
	if !iv.ContainsInterval(MustNew(1.5, 2.5)) {
		t.Error("[1,3] should contain [1.5,2.5]")
	}
	if !iv.ContainsInterval(iv) {
		t.Error("interval should contain itself")
	}
	if iv.ContainsInterval(MustNew(0.5, 2)) {
		t.Error("[1,3] should not contain [0.5,2]")
	}
}

func TestIntersect(t *testing.T) {
	a := MustNew(0, 5)
	b := MustNew(3, 8)
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(MustNew(3, 5)) {
		t.Fatalf("Intersect = %v, %v", got, ok)
	}
	// Touching endpoints intersect in a point.
	c := MustNew(5, 9)
	got, ok = a.Intersect(c)
	if !ok || !got.Equal(Point(5)) {
		t.Fatalf("touching Intersect = %v, %v", got, ok)
	}
	// Disjoint.
	d := MustNew(6, 7)
	if _, ok := a.Intersect(d); ok {
		t.Fatal("disjoint intervals should not intersect")
	}
	if a.Intersects(d) {
		t.Fatal("Intersects should be false for disjoint")
	}
	if !a.Intersects(c) {
		t.Fatal("Intersects should be true for touching")
	}
}

func TestHullTranslate(t *testing.T) {
	a := MustNew(0, 1)
	b := MustNew(4, 6)
	if got := a.Hull(b); !got.Equal(MustNew(0, 6)) {
		t.Fatalf("Hull = %v", got)
	}
	if got := a.Translate(2.5); !got.Equal(MustNew(2.5, 3.5)) {
		t.Fatalf("Translate = %v", got)
	}
}

func TestIntersectAll(t *testing.T) {
	if _, ok := IntersectAll(); ok {
		t.Fatal("IntersectAll() of nothing should be not-ok")
	}
	got, ok := IntersectAll(MustNew(0, 10), MustNew(2, 8), MustNew(4, 12))
	if !ok || !got.Equal(MustNew(4, 8)) {
		t.Fatalf("IntersectAll = %v, %v", got, ok)
	}
	if _, ok := IntersectAll(MustNew(0, 1), MustNew(2, 3)); ok {
		t.Fatal("disjoint IntersectAll should be not-ok")
	}
}

func TestHullAll(t *testing.T) {
	if _, ok := HullAll(); ok {
		t.Fatal("HullAll() of nothing should be not-ok")
	}
	got, ok := HullAll(MustNew(2, 3), MustNew(-1, 0), MustNew(5, 6))
	if !ok || !got.Equal(MustNew(-1, 6)) {
		t.Fatalf("HullAll = %v, %v", got, ok)
	}
}

func TestPairwiseIntersect(t *testing.T) {
	good := []Interval{MustNew(0, 4), MustNew(2, 6), MustNew(3, 5)}
	if !PairwiseIntersect(good) {
		t.Fatal("all share point 3..4, should pairwise intersect")
	}
	bad := []Interval{MustNew(0, 1), MustNew(0.5, 2), MustNew(1.5, 3)}
	if PairwiseIntersect(bad) {
		t.Fatal("[0,1] and [1.5,3] are disjoint")
	}
	if !PairwiseIntersect(nil) {
		t.Fatal("empty set is vacuously pairwise intersecting")
	}
}

func TestSortByWidth(t *testing.T) {
	in := []Interval{MustNew(0, 10), MustNew(1, 2), MustNew(0, 5)}
	out := SortByWidth(in)
	if !out[0].Equal(MustNew(1, 2)) || !out[1].Equal(MustNew(0, 5)) || !out[2].Equal(MustNew(0, 10)) {
		t.Fatalf("SortByWidth = %v", out)
	}
	// Input must be untouched.
	if !in[0].Equal(MustNew(0, 10)) {
		t.Fatal("SortByWidth mutated its input")
	}
	// Deterministic tie-break by Lo.
	ties := []Interval{MustNew(5, 6), MustNew(1, 2), MustNew(3, 4)}
	got := SortByWidth(ties)
	if !got[0].Equal(MustNew(1, 2)) || !got[1].Equal(MustNew(3, 4)) || !got[2].Equal(MustNew(5, 6)) {
		t.Fatalf("tie-break order = %v", got)
	}
}

func TestWidths(t *testing.T) {
	ws := Widths([]Interval{MustNew(0, 1), MustNew(2, 5)})
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Fatalf("Widths = %v", ws)
	}
}

func TestApproxEqual(t *testing.T) {
	a := MustNew(0, 1)
	b := MustNew(1e-12, 1+1e-12)
	if !a.ApproxEqual(b, 1e-9) {
		t.Fatal("should be approx equal at 1e-9")
	}
	if a.ApproxEqual(b, 1e-15) {
		t.Fatal("should not be approx equal at 1e-15")
	}
}

func TestString(t *testing.T) {
	if got := MustNew(-1.5, 2).String(); got != "[-1.5, 2]" {
		t.Fatalf("String = %q", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestQuickIntersectProperties(t *testing.T) {
	f := func(aLo, aW, bLo, bW float64) bool {
		a := normIv(aLo, aW)
		b := normIv(bLo, bW)
		x, okx := a.Intersect(b)
		y, oky := b.Intersect(a)
		if okx != oky {
			return false
		}
		if !okx {
			return !a.Intersects(b)
		}
		return x.Equal(y) && a.ContainsInterval(x) && b.ContainsInterval(x) && a.Intersects(b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: hull contains both operands and is the smallest such interval
// (its endpoints are achieved by one of the operands).
func TestQuickHullProperties(t *testing.T) {
	f := func(aLo, aW, bLo, bW float64) bool {
		a := normIv(aLo, aW)
		b := normIv(bLo, bW)
		h := a.Hull(b)
		if !h.ContainsInterval(a) || !h.ContainsInterval(b) {
			return false
		}
		loAchieved := h.Lo == a.Lo || h.Lo == b.Lo
		hiAchieved := h.Hi == a.Hi || h.Hi == b.Hi
		return loAchieved && hiAchieved
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: translation preserves width.
func TestQuickTranslateWidth(t *testing.T) {
	f := func(lo, w, d float64) bool {
		iv := normIv(lo, w)
		d = clampFinite(d)
		tr := iv.Translate(d)
		return math.Abs(tr.Width()-iv.Width()) < 1e-6*math.Max(1, math.Abs(iv.Width()))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// normIv builds a valid interval from arbitrary floats by clamping to a
// sane range so float artifacts do not dominate.
func normIv(lo, w float64) Interval {
	lo = clampFinite(lo)
	w = math.Abs(clampFinite(w))
	return Interval{Lo: lo, Hi: lo + w}
}

func clampFinite(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x > 1e6 {
		return 1e6
	}
	if x < -1e6 {
		return -1e6
	}
	return x
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 500} }
