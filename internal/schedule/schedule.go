// Package schedule implements the communication schedules of Section IV:
// fixed transmission orders over a shared bus, derived only from the
// a-priori interval widths (the sole information available before any
// measurement is taken).
package schedule

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Kind names a built-in schedule policy.
type Kind int

const (
	// Ascending orders sensors by increasing interval width: the most
	// precise sensors transmit first. This is the schedule the paper
	// recommends.
	Ascending Kind = iota
	// Descending orders sensors by decreasing interval width: the least
	// precise sensors transmit first.
	Descending
	// Random draws a fresh uniformly random order every round.
	Random
	// Fixed uses a caller-provided permutation for every round.
	Fixed
	// TrustedLast places sensors marked trusted at the end (so the
	// attacker never sees their measurements before sending), ordering
	// each group ascending by width. Section IV-C argues for this when
	// spoof-resistance is known.
	TrustedLast
)

// String returns the schedule name used in reports and tables.
func (k Kind) String() string {
	switch k {
	case Ascending:
		return "Ascending"
	case Descending:
		return "Descending"
	case Random:
		return "Random"
	case Fixed:
		return "Fixed"
	case TrustedLast:
		return "TrustedLast"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scheduler produces a transmission order (a permutation of sensor
// indices) for each communication round.
type Scheduler interface {
	// Order returns the slot order for the next round: Order()[s] is the
	// sensor index transmitting in slot s. The returned slice is OWNED BY
	// THE SCHEDULER and only valid until the next Order call: the round
	// simulator asks for an order every round of a multi-million-round
	// expectation, so implementations reuse one buffer instead of
	// allocating per round. Callers must not modify the slice and must
	// copy it if they retain it across rounds.
	Order() []int
	// Name identifies the scheduler in reports.
	Name() string
}

// ErrBadSchedule reports invalid construction parameters.
var ErrBadSchedule = errors.New("schedule: invalid parameters")

// widthScheduler sorts once by width and replays the same order.
type widthScheduler struct {
	order []int
	name  string
}

func (w *widthScheduler) Order() []int { return w.order }
func (w *widthScheduler) Name() string { return w.name }

// NewAscending returns the Ascending scheduler for sensors with the given
// interval widths. Ties break by index so the order is deterministic.
func NewAscending(widths []float64) (Scheduler, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("%w: no sensors", ErrBadSchedule)
	}
	return &widthScheduler{order: sortedByWidth(widths, true), name: Ascending.String()}, nil
}

// NewDescending returns the Descending scheduler.
func NewDescending(widths []float64) (Scheduler, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("%w: no sensors", ErrBadSchedule)
	}
	return &widthScheduler{order: sortedByWidth(widths, false), name: Descending.String()}, nil
}

func sortedByWidth(widths []float64, asc bool) []int {
	order := make([]int, len(widths))
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := widths[order[a]], widths[order[b]]
		if wa != wb {
			if asc {
				return wa < wb
			}
			return wa > wb
		}
		return order[a] < order[b]
	})
	return order
}

// randomScheduler shuffles a reused buffer every round.
type randomScheduler struct {
	order []int
	rng   *rand.Rand
}

func (r *randomScheduler) Order() []int {
	for k := range r.order {
		r.order[k] = k
	}
	r.rng.Shuffle(len(r.order), func(a, b int) { r.order[a], r.order[b] = r.order[b], r.order[a] })
	return r.order
}
func (r *randomScheduler) Name() string { return Random.String() }

// NewRandom returns the Random scheduler over n sensors driven by rng.
func NewRandom(n int, rng *rand.Rand) (Scheduler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSchedule, n)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadSchedule)
	}
	return &randomScheduler{order: make([]int, n), rng: rng}, nil
}

// fixedScheduler replays a caller-supplied permutation.
type fixedScheduler struct{ order []int }

func (f *fixedScheduler) Order() []int { return f.order }
func (f *fixedScheduler) Name() string { return Fixed.String() }

// NewFixed returns a scheduler replaying the given permutation of
// 0..n-1. The permutation is validated.
func NewFixed(order []int) (Scheduler, error) {
	n := len(order)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty order", ErrBadSchedule)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("%w: %v is not a permutation", ErrBadSchedule, order)
		}
		seen[v] = true
	}
	return &fixedScheduler{order: append([]int(nil), order...)}, nil
}

// NewTrustedLast returns the TrustedLast scheduler: untrusted sensors
// first (ascending width), trusted sensors last (ascending width).
func NewTrustedLast(widths []float64, trusted []bool) (Scheduler, error) {
	if len(widths) == 0 || len(widths) != len(trusted) {
		return nil, fmt.Errorf("%w: widths/trusted length mismatch", ErrBadSchedule)
	}
	asc := sortedByWidth(widths, true)
	var untrustedFirst, trustedTail []int
	for _, idx := range asc {
		if trusted[idx] {
			trustedTail = append(trustedTail, idx)
		} else {
			untrustedFirst = append(untrustedFirst, idx)
		}
	}
	order := append(untrustedFirst, trustedTail...)
	return &widthScheduler{order: order, name: TrustedLast.String()}, nil
}

// ForKind constructs a scheduler of the given kind. Fixed requires a
// non-nil order; Random requires a non-nil rng; TrustedLast requires
// trusted flags.
func ForKind(k Kind, widths []float64, trusted []bool, order []int, rng *rand.Rand) (Scheduler, error) {
	switch k {
	case Ascending:
		return NewAscending(widths)
	case Descending:
		return NewDescending(widths)
	case Random:
		return NewRandom(len(widths), rng)
	case Fixed:
		return NewFixed(order)
	case TrustedLast:
		return NewTrustedLast(widths, trusted)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadSchedule, int(k))
	}
}

// SlotOf returns the slot index at which sensor idx transmits under the
// given order, or -1 if absent.
func SlotOf(order []int, idx int) int {
	for s, v := range order {
		if v == idx {
			return s
		}
	}
	return -1
}
