package schedule

import (
	"math/rand"
	"testing"
)

func isPerm(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestAscending(t *testing.T) {
	widths := []float64{2, 0.2, 1, 0.2}
	s, err := NewAscending(widths)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	// Ties (the two 0.2s) break by index: 1 then 3.
	want := []int{1, 3, 2, 0}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Ascending order = %v, want %v", got, want)
		}
	}
	if s.Name() != "Ascending" {
		t.Fatalf("Name = %q", s.Name())
	}
	// The returned order is a scheduler-owned reused buffer (the
	// simulator calls Order once per round of multi-million-round
	// expectations): successive calls return the same permutation
	// without allocating.
	if allocs := testing.AllocsPerRun(100, func() { s.Order() }); allocs != 0 {
		t.Fatalf("Order allocates %v per round, want 0", allocs)
	}
}

func TestDescending(t *testing.T) {
	widths := []float64{2, 0.2, 1, 0.2}
	s, err := NewDescending(widths)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	want := []int{0, 2, 1, 3}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Descending order = %v, want %v", got, want)
		}
	}
}

func TestAscendingDescendingAreReverses(t *testing.T) {
	// With all-distinct widths the two schedules are exact reverses.
	widths := []float64{5, 11, 17, 8}
	a, _ := NewAscending(widths)
	d, _ := NewDescending(widths)
	ao, do := a.Order(), d.Order()
	for k := range ao {
		if ao[k] != do[len(do)-1-k] {
			t.Fatalf("asc %v is not the reverse of desc %v", ao, do)
		}
	}
}

func TestEmptyWidthsRejected(t *testing.T) {
	if _, err := NewAscending(nil); err == nil {
		t.Fatal("empty widths must fail")
	}
	if _, err := NewDescending(nil); err == nil {
		t.Fatal("empty widths must fail")
	}
}

func TestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s, err := NewRandom(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Random" {
		t.Fatalf("Name = %q", s.Name())
	}
	differs := false
	// Order returns a reused buffer, so snapshot each round's order
	// before asking for the next (the documented don't-retain contract).
	prev := append([]int(nil), s.Order()...)
	if !isPerm(prev, 5) {
		t.Fatalf("not a permutation: %v", prev)
	}
	for round := 0; round < 20; round++ {
		cur := append([]int(nil), s.Order()...)
		if !isPerm(cur, 5) {
			t.Fatalf("not a permutation: %v", cur)
		}
		for k := range cur {
			if cur[k] != prev[k] {
				differs = true
			}
		}
		prev = cur
	}
	if !differs {
		t.Fatal("Random schedule never changed in 20 rounds")
	}
	if _, err := NewRandom(0, rng); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := NewRandom(3, nil); err == nil {
		t.Fatal("nil rng must fail")
	}
}

func TestFixed(t *testing.T) {
	s, err := NewFixed([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	if got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("Fixed order = %v", got)
	}
	if _, err := NewFixed([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate entries must fail")
	}
	if _, err := NewFixed([]int{0, 3, 1}); err == nil {
		t.Fatal("out-of-range entries must fail")
	}
	if _, err := NewFixed(nil); err == nil {
		t.Fatal("empty order must fail")
	}
}

func TestTrustedLast(t *testing.T) {
	widths := []float64{1, 0.2, 2, 0.5}
	trusted := []bool{false, true, false, true}
	s, err := NewTrustedLast(widths, trusted)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Order()
	// Untrusted ascending: 0 (1), 2 (2); trusted ascending: 1 (0.2), 3 (0.5).
	want := []int{0, 2, 1, 3}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("TrustedLast order = %v, want %v", got, want)
		}
	}
	if _, err := NewTrustedLast(widths, trusted[:2]); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestForKind(t *testing.T) {
	widths := []float64{1, 2, 3}
	rng := rand.New(rand.NewSource(1))
	for _, k := range []Kind{Ascending, Descending, Random, TrustedLast} {
		s, err := ForKind(k, widths, make([]bool, 3), nil, rng)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !isPerm(s.Order(), 3) {
			t.Fatalf("%v: not a permutation", k)
		}
	}
	if s, err := ForKind(Fixed, widths, nil, []int{1, 2, 0}, nil); err != nil || !isPerm(s.Order(), 3) {
		t.Fatalf("Fixed via ForKind: %v", err)
	}
	if _, err := ForKind(Kind(42), widths, nil, nil, rng); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Ascending: "Ascending", Descending: "Descending", Random: "Random",
		Fixed: "Fixed", TrustedLast: "TrustedLast", Kind(9): "Kind(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestSlotOf(t *testing.T) {
	order := []int{2, 0, 1}
	if got := SlotOf(order, 0); got != 1 {
		t.Fatalf("SlotOf(0) = %d", got)
	}
	if got := SlotOf(order, 5); got != -1 {
		t.Fatalf("SlotOf(missing) = %d", got)
	}
}
