module sensorfusion

go 1.21
