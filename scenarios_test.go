package sensorfusion

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeScenarios drives the scenario harness through the public
// facade: every suite streams records, every verdict passes, and the
// report carries each suite's name.
func TestFacadeScenarios(t *testing.T) {
	opts := ScenarioOptions{Steps: 15, Seed: 2014, CacheDir: t.TempDir()}
	var buf bytes.Buffer
	verdicts, err := RunScenarios(opts, NewJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	pass, fail, skip := ScenarioVerdictCounts(verdicts)
	if fail != 0 || pass == 0 {
		t.Fatalf("verdicts: %d PASS, %d FAIL, %d SKIP\n%s", pass, fail, skip, ScenarioReport(verdicts))
	}
	report := ScenarioReport(verdicts)
	for _, suite := range ScenarioSuites() {
		if !strings.Contains(report, "scenario-"+suite) {
			t.Errorf("report missing suite %s", suite)
		}
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 16 {
		t.Errorf("streamed %d records, want 16", lines)
	}

	// A warm re-run through the same cache is byte-identical.
	var again bytes.Buffer
	opts.Workers = 4
	if _, err := RunScenarios(opts, NewJSONLSink(&again)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("warm parallel re-run produced different records")
	}
}

// TestFacadeFuzzScenarios pins the deterministic fuzzer: a correct
// implementation yields a single PASS verdict, reproducibly.
func TestFacadeFuzzScenarios(t *testing.T) {
	a := FuzzScenarios(60, 7)
	if len(a) != 1 || a[0].Status.String() != "PASS" {
		t.Fatalf("fuzz verdicts = %+v, want one PASS", a)
	}
	b := FuzzScenarios(60, 7)
	if len(b) != 1 || a[0] != b[0] {
		t.Fatalf("fuzz not deterministic: %+v vs %+v", a[0], b[0])
	}
}
