// Benchmark harness: one benchmark per table and figure of the paper,
// plus the ablations called out in DESIGN.md. Each experiment benchmark
// regenerates its artifact per iteration and reports the headline
// quantities via b.ReportMetric, so `go test -bench=. -benchmem` both
// times the harness and reprints the paper's numbers.
//
// The perf headliners `make bench-json` records (and bench-diff gates):
//
//   - BenchmarkExpectedWidthAttacked — the attacked expectation, the
//     campaign's dominant cost, end to end.
//   - BenchmarkSweeperFuseBatch / BenchmarkSweeperFuseBatchWide vs
//     BenchmarkSweeperFuseScalar — the dispatched Marzullo lane kernel
//     (AVX2 on capable amd64, `make bench-kernels` compares every mode)
//     against per-candidate scoring, at 64 and 512 candidates.
//   - BenchmarkScenarioFaultsStep (internal/experiments) — one step of
//     the fault-injection scenario generator on its Sweeper hot path.
//   - BenchmarkAttackOptimalUncached / BenchmarkAttackOptimalCached /
//     BenchmarkRoundClean — the zero-alloc invariants (cached AND
//     uncached plan search, steady-state rounds); bench-diff pins them
//     and the batch kernel benchmarks to exactly 0 allocs/op.
//   - BenchmarkCampaignParallel_1 vs _NumCPU — engine scaling; the
//     Table I streams split each configuration into three engine items
//     so heavy rows parallelize internally.
//   - BenchmarkSimulatedRound, BenchmarkCampaignBatched,
//     BenchmarkBoundedMerge, BenchmarkFuserReuse, BenchmarkResultsSink
//     — round engine, task batching, merge window, fusion and sink
//     allocation behavior.
package sensorfusion_test

import (
	"math/rand"
	"runtime"
	"testing"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/canbus"
	"sensorfusion/internal/consensus"
	"sensorfusion/internal/experiments"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/platoon"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sim"
	"sensorfusion/internal/track"
)

// --- Table I: one benchmark per row -----------------------------------

func benchTable1Row(b *testing.B, rowIdx int, opts experiments.Table1Options) {
	cfg := experiments.DefaultTable1Configs()[rowIdx]
	var last experiments.Table1Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table1Run(cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(last.Asc, "E|S|asc")
	b.ReportMetric(last.Desc, "E|S|desc")
	b.ReportMetric(cfg.PaperAsc, "paper-asc")
	b.ReportMetric(cfg.PaperDesc, "paper-desc")
	if last.Detections > 0 {
		b.Fatalf("attacker detected %d times", last.Detections)
	}
	if last.Desc < last.Asc-1e-9 {
		b.Fatalf("shape violated: desc %.3f < asc %.3f", last.Desc, last.Asc)
	}
}

func BenchmarkTable1_Row1_n3_L5_11_17(b *testing.B) {
	benchTable1Row(b, 0, experiments.Table1Options{})
}
func BenchmarkTable1_Row2_n3_L5_11_11(b *testing.B) {
	benchTable1Row(b, 1, experiments.Table1Options{})
}
func BenchmarkTable1_Row3_n4_L5_8_17_20(b *testing.B) {
	benchTable1Row(b, 2, experiments.Table1Options{})
}
func BenchmarkTable1_Row4_n4_L5_8_8_11(b *testing.B) {
	benchTable1Row(b, 3, experiments.Table1Options{})
}
func BenchmarkTable1_Row5_n5_L5_5_5_5_20(b *testing.B) {
	benchTable1Row(b, 4, experiments.Table1Options{})
}
func BenchmarkTable1_Row6_n5_L5_5_5_14_20(b *testing.B) {
	benchTable1Row(b, 5, experiments.Table1Options{})
}
func BenchmarkTable1_Row7_n5_fa2_L5_5_5_5_20(b *testing.B) {
	benchTable1Row(b, 6, experiments.Table1Options{MaxExact: 300, MCSamples: 100})
}
func BenchmarkTable1_Row8_n5_fa2_L5_5_5_14_17(b *testing.B) {
	benchTable1Row(b, 7, experiments.Table1Options{MaxExact: 300, MCSamples: 100})
}

// --- Table II ----------------------------------------------------------

func BenchmarkTable2_CaseStudy(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(experiments.Table2Options{Steps: 400, Seed: 2014})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Schedule {
		case "Ascending":
			b.ReportMetric(r.UpperPct, "asc->10.5%")
			if r.UpperPct != 0 || r.LowerPct != 0 {
				b.Fatalf("Ascending has violations: %+v", r)
			}
		case "Descending":
			b.ReportMetric(r.UpperPct, "desc->10.5%")
		case "Random":
			b.ReportMetric(r.UpperPct, "rand->10.5%")
		}
		if r.Detections > 0 {
			b.Fatalf("%s: attacker detected", r.Schedule)
		}
	}
}

// --- Figures 1-5 -------------------------------------------------------

func benchFigure(b *testing.B, gen func() (experiments.Figure, error)) {
	for i := 0; i < b.N; i++ {
		fig, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if !fig.AllClaimsHold() {
			b.Fatalf("claims failed:\n%s", fig)
		}
	}
}

func BenchmarkFigure1_MarzulloFusion(b *testing.B)       { benchFigure(b, experiments.Figure1) }
func BenchmarkFigure2_NoOptimalPolicy(b *testing.B)      { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3_Theorem1Cases(b *testing.B)        { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4_Theorems3And4(b *testing.B)        { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5_ScheduleNonDominance(b *testing.B) { benchFigure(b, experiments.Figure5) }

// --- Ablation: sweep vs naive fusion ------------------------------------

func randomIntervals(n int, rng *rand.Rand) []interval.Interval {
	ivs := make([]interval.Interval, n)
	for k := range ivs {
		w := 0.5 + rng.Float64()*5
		off := (rng.Float64() - 0.5) * w
		ivs[k] = interval.MustCentered(off, w)
	}
	return ivs
}

func benchFuseImpl(b *testing.B, n int, impl func([]interval.Interval, int) (interval.Interval, error)) {
	rng := rand.New(rand.NewSource(1))
	ivs := randomIntervals(n, rng)
	f := fusion.SafeFaultBound(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := impl(ivs, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarzulloSweep_n8(b *testing.B)   { benchFuseImpl(b, 8, fusion.Fuse) }
func BenchmarkMarzulloSweep_n64(b *testing.B)  { benchFuseImpl(b, 64, fusion.Fuse) }
func BenchmarkMarzulloSweep_n512(b *testing.B) { benchFuseImpl(b, 512, fusion.Fuse) }
func BenchmarkMarzulloNaive_n8(b *testing.B)   { benchFuseImpl(b, 8, fusion.FuseNaive) }
func BenchmarkMarzulloNaive_n64(b *testing.B)  { benchFuseImpl(b, 64, fusion.FuseNaive) }
func BenchmarkMarzulloNaive_n512(b *testing.B) { benchFuseImpl(b, 512, fusion.FuseNaive) }

func BenchmarkBrooksIyengar_n8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ivs := randomIntervals(8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusion.BrooksIyengarFuse(ivs, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batched sweep kernel -------------------------------------------------

// sweeperBatchFixture builds the attacker-shaped workload for the batch
// kernel benchmarks: one preloaded base of 6 intervals and nc candidate
// pairs to score against it, all overlapping so fusion succeeds.
func sweeperBatchFixture(nc int) (*interval.Sweeper, [][]interval.Interval) {
	rng := rand.New(rand.NewSource(9))
	var sw interval.Sweeper
	sw.Preload([]interval.Interval{
		interval.MustCentered(10.1, 1), interval.MustCentered(9.8, 2),
		interval.MustCentered(10.3, 3), interval.MustCentered(10, 0.5),
		interval.MustCentered(9.9, 1.5), interval.MustCentered(10.2, 2.5),
	})
	cands := make([][]interval.Interval, nc)
	for i := range cands {
		cands[i] = []interval.Interval{
			interval.MustCentered(10+(rng.Float64()-0.5), 0.5+rng.Float64()),
			interval.MustCentered(10+(rng.Float64()-0.5), 0.5+rng.Float64()),
		}
	}
	return &sw, cands
}

// BenchmarkSweeperFuseBatch scores 64 candidate placements in one
// ScoreBatch call — the plan search's inner product, including the
// per-batch candidate packing. Compare with BenchmarkSweeperFuseScalar
// (the same work through per-candidate FuseWith) for the batch kernel's
// constant-factor win; 0 allocs/op is part of the contract.
func BenchmarkSweeperFuseBatch(b *testing.B) {
	sw, cands := sweeperBatchFixture(64)
	var batch interval.Batch
	widths := make([]float64, len(cands))
	ok := make([]bool, len(cands))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(2)
		for _, c := range cands {
			batch.Add(c)
		}
		sw.ScoreBatch(&batch, 2, widths, ok)
		for j := range ok {
			if !ok[j] {
				b.Fatal("fusion unexpectedly empty")
			}
		}
	}
}

// BenchmarkSweeperFuseBatchWide is the 512-candidate variant: wide
// enough that the four-lane assembly groups dominate over packing and
// tail work, so kernel-level regressions show here first.
func BenchmarkSweeperFuseBatchWide(b *testing.B) {
	sw, cands := sweeperBatchFixture(512)
	var batch interval.Batch
	widths := make([]float64, len(cands))
	ok := make([]bool, len(cands))
	// Warm the batch backing arrays so the timed loop measures the
	// kernel, not one-time 512-lane growth.
	batch.Reset(2)
	for _, c := range cands {
		batch.Add(c)
	}
	sw.ScoreBatch(&batch, 2, widths, ok)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(2)
		for _, c := range cands {
			batch.Add(c)
		}
		sw.ScoreBatch(&batch, 2, widths, ok)
		for j := range ok {
			if !ok[j] {
				b.Fatal("fusion unexpectedly empty")
			}
		}
	}
}

// BenchmarkSweeperFuseScalar is BenchmarkSweeperFuseBatch's baseline:
// the identical 64 candidates scored one FuseWith call at a time.
func BenchmarkSweeperFuseScalar(b *testing.B) {
	sw, cands := sweeperBatchFixture(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			if _, ok := sw.WidthWith(c, 2); !ok {
				b.Fatal("fusion unexpectedly empty")
			}
		}
	}
}

// --- Ablation: attacker strategies --------------------------------------

func benchStrategy(b *testing.B, strat attack.Strategy) {
	ctx := attack.Context{
		N: 4, F: 1, Sent: 3,
		Delta:     interval.MustNew(9.9, 10.1),
		OwnWidths: []float64{0.2},
		Seen: []interval.Interval{
			interval.MustNew(9.9, 10.1),
			interval.MustNew(9.6, 10.6),
			interval.MustNew(9.2, 11.2),
		},
		Step: 0.1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if plan := strat.Plan(ctx); len(plan) != 1 {
			b.Fatal("bad plan")
		}
	}
}

func BenchmarkAttackNull(b *testing.B)   { benchStrategy(b, attack.Null{}) }
func BenchmarkAttackGreedy(b *testing.B) { benchStrategy(b, attack.Greedy{}) }
func BenchmarkAttackOptimalUncached(b *testing.B) {
	// One persistent Optimal, a cycle of distinct contexts, and a memo
	// capped at a single entry: every Plan call misses the cache and runs
	// the actual batched grid search with warm scratch — the steady state
	// of continuous-valued workloads, where contexts never repeat. The
	// 0 allocs/op this reports is pinned by
	// TestOptimalUncachedSearchZeroAllocs and the bench-diff gate.
	base := attack.Context{
		N: 4, F: 1, Sent: 3,
		OwnWidths: []float64{0.2},
		Seen: []interval.Interval{
			interval.MustNew(9.9, 10.1),
			interval.MustNew(9.6, 10.6),
			interval.MustNew(9.2, 11.2),
		},
		Step: 0.1,
	}
	o := attack.NewOptimal()
	o.MemoCap = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shift := float64(i%512+1) * 1e-4 // distinct after round6 quantization
		ctx := base
		ctx.Delta = interval.MustNew(9.9+shift, 10.1+shift)
		if plan := o.Plan(ctx); len(plan) != 1 {
			b.Fatal("bad plan")
		}
	}
}
func BenchmarkAttackOptimalCached(b *testing.B) { benchStrategy(b, attack.NewOptimal()) }

// --- Ablation: Table I grid step ----------------------------------------

func benchGridStep(b *testing.B, step float64) {
	cfg := experiments.DefaultTable1Configs()[0] // n=3 row, cheap enough
	var last experiments.Table1Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.Table1Run(cfg, experiments.Table1Options{
			MeasureStep: step, AttackerStep: step,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(last.Asc, "E|S|asc")
	b.ReportMetric(last.Desc, "E|S|desc")
}

func BenchmarkTable1GridStep_2_5(b *testing.B) { benchGridStep(b, 2.5) }
func BenchmarkTable1GridStep_1_0(b *testing.B) { benchGridStep(b, 1.0) }
func BenchmarkTable1GridStep_0_5(b *testing.B) { benchGridStep(b, 0.5) }

// --- Ablation: target selection (Theorems 3/4 empirically) --------------

func benchTargetPolicy(b *testing.B, policy attack.TargetPolicy) {
	widths := []float64{2, 2, 2, 6, 6}
	rng := rand.New(rand.NewSource(5))
	targets, err := attack.ChooseTargets(widths, 2, policy, rng)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := schedule.NewDescending(widths)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		exp, err := sim.ExpectedWidth(sim.Setup{
			Widths: widths, F: 2, Targets: targets, Scheduler: sched,
			Strategy: attack.NewOptimal(), Step: 1, MaxExact: 300, MCSamples: 80,
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
		mean = exp.Mean
	}
	b.ReportMetric(mean, "E|S|")
}

func BenchmarkTargetSmallest(b *testing.B) { benchTargetPolicy(b, attack.TargetSmallest) }
func BenchmarkTargetLargest(b *testing.B)  { benchTargetPolicy(b, attack.TargetLargest) }

// Tie-break ablation on a Table I row with width ties (row 5): the
// attacker-favorable tie-break compromises the later-transmitting
// equal-width sensor (active mode under Ascending), the system-favorable
// one transmits first (passive, forced correct).
func benchTieBreak(b *testing.B, systemTies bool) {
	cfg := experiments.DefaultTable1Configs()[4] // {5,5,5,5,20}, fa=1
	var row experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Table1Run(cfg, experiments.Table1Options{
			MaxExact: 300, MCSamples: 100, SystemTies: systemTies,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Asc, "E|S|asc")
	b.ReportMetric(row.NoAttack, "E|S|clean")
}

func BenchmarkTieBreakAttackerFavorable(b *testing.B) { benchTieBreak(b, false) }
func BenchmarkTieBreakSystemFavorable(b *testing.B)   { benchTieBreak(b, true) }

// --- Round pipeline ------------------------------------------------------

func BenchmarkSimulatedRound(b *testing.B) {
	widths := []float64{0.2, 0.2, 1, 2}
	sched, err := schedule.NewDescending(widths)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.Setup{
		Widths: widths, F: 1, Targets: []int{0},
		Scheduler: sched, Strategy: attack.NewOptimal(), Step: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	correct := make([]interval.Interval, len(widths))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, w := range widths {
			correct[k] = interval.MustCentered(10+(rng.Float64()-0.5)*w, w)
		}
		if _, err := s.Round(correct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions: tracker, wire codec, consensus baseline ----------------

func BenchmarkTrackerUpdate(b *testing.B) {
	tr, err := track.New(0.05)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := 9 + rng.Float64()
		if _, err := tr.Update(interval.Interval{Lo: lo, Hi: lo + 1}); err != nil {
			tr.Reset()
		}
	}
}

func BenchmarkCanbusRoundTrip(b *testing.B) {
	iv := interval.MustNew(9.9, 10.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := canbus.RoundTrip(3, uint8(i), iv); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline contrast: attack impact on average consensus vs Marzullo
// fusion (reported as estimate error per unit of lie).
func BenchmarkConsensusUnderAttack(b *testing.B) {
	g, err := consensus.Complete(5)
	if err != nil {
		b.Fatal(err)
	}
	p, err := consensus.NewProtocol(g)
	if err != nil {
		b.Fatal(err)
	}
	initial := []float64{10, 10, 10, 10, 40} // node 4 lies by 30
	var drift float64
	for i := 0; i < b.N; i++ {
		states, err := p.Run(initial, 200)
		if err != nil {
			b.Fatal(err)
		}
		drift = consensus.Mean(states) - 10
	}
	b.ReportMetric(drift, "estimate-drift")
}

func BenchmarkMarzulloUnderSameAttack(b *testing.B) {
	ivs := []interval.Interval{
		interval.MustCentered(10, 0.2),
		interval.MustCentered(10, 0.2),
		interval.MustCentered(10, 1),
		interval.MustCentered(10, 2),
		interval.MustCentered(40, 1), // the same lie
	}
	var drift float64
	for i := 0; i < b.N; i++ {
		fused, err := fusion.Fuse(ivs, 2)
		if err != nil {
			b.Fatal(err)
		}
		drift = fused.Center() - 10
	}
	b.ReportMetric(drift, "estimate-drift")
}

// --- Campaign engine: parallel scaling ----------------------------------

// benchCampaign runs a fixed slice of the Section IV-A campaign through
// the engine. Comparing the _1 and _NumCPU variants shows the parallel
// speedup; the rows themselves are identical (asserted by the
// determinism tests).
func benchCampaign(b *testing.B, workers int) {
	cfgs := experiments.EnumerateSweepConfigs()[:6] // n=3 slice
	var res experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunCampaign(experiments.CampaignOptions{
			Table1Options: experiments.Table1Options{
				MeasureStep: 1, AttackerStep: 1,
				MaxExact: 200, MCSamples: 60,
				Parallel: workers, Seed: 1,
			},
			Configs: cfgs,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Violations) > 0 {
		b.Fatalf("never-smaller violations: %v", res.Violations)
	}
	b.ReportMetric(float64(len(res.Rows)), "configs")
}

func BenchmarkCampaignParallel_1(b *testing.B)      { benchCampaign(b, 1) }
func BenchmarkCampaignParallel_NumCPU(b *testing.B) { benchCampaign(b, runtime.NumCPU()) }

// Exhaustive schedule ranking for a Table I configuration: validates the
// Ascending recommendation against all n! fixed orders.
func BenchmarkAllSchedules_n3(b *testing.B) {
	var ranks []experiments.ScheduleRank
	for i := 0; i < b.N; i++ {
		var err error
		ranks, err = experiments.AllSchedules([]float64{5, 11, 17}, 1,
			experiments.Table1Options{MeasureStep: 1, AttackerStep: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	pos, mean, ok := experiments.FindRank(ranks, experiments.AscendingSlotWidths([]float64{5, 11, 17}))
	if !ok {
		b.Fatal("ascending missing")
	}
	b.ReportMetric(float64(pos+1), "asc-rank")
	b.ReportMetric(mean, "asc-E|S|")
}

func BenchmarkPlatoonStep(b *testing.B) {
	p := platoon.NewParams(schedule.Descending)
	r, err := platoon.NewRunner(p, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot path headliners (PR 5) ------------------------------------------

// BenchmarkExpectedWidthAttacked is the tentpole benchmark of the
// zero-alloc round engine rework: one full exhaustive expectation over
// an attacked n=5, fa=2 configuration — the grid combos x sensors x
// attacker placements product that dominates campaign wall time. The
// incremental-sweeper plan search took this class of configuration from
// ~77ms to under 20ms on the reference machine (>=3x vs the PR 4
// baseline recorded in BENCH_2026-07-30.json).
func BenchmarkExpectedWidthAttacked(b *testing.B) {
	widths := []float64{2, 2, 2, 6, 6}
	targets, err := attack.ChooseTargets(widths, 2, attack.TargetSmallest, nil)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := schedule.NewDescending(widths)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		exp, err := sim.ExpectedWidth(sim.Setup{
			Widths: widths, F: 2, Targets: targets, Scheduler: sched,
			Strategy: attack.NewOptimal(), Step: 1, MaxExact: 300, MCSamples: 80,
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
		mean = exp.Mean
	}
	b.ReportMetric(mean, "E|S|")
}

// BenchmarkRoundClean drives the clean (no attacker) round path that
// every expectation enumerates millions of times: 0 allocs/op, pinned
// by TestRoundCleanPathZeroAllocs and gated against growth by
// `make bench-diff`.
func BenchmarkRoundClean(b *testing.B) {
	widths := []float64{0.2, 0.2, 1, 2, 3}
	sched, err := schedule.NewAscending(widths)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.Setup{Widths: widths, F: 2, Scheduler: sched})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	correct := make([]interval.Interval, len(widths))
	var res sim.RoundResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, w := range widths {
			correct[k] = interval.MustCentered(10+(rng.Float64()-0.5)*w, w)
		}
		if err := s.RoundInto(correct, &res); err != nil {
			b.Fatal(err)
		}
	}
}
