package sensorfusion

import (
	"math/rand"

	"sensorfusion/internal/faults"
	"sensorfusion/internal/platoon"
	"sensorfusion/internal/sim"
	"sensorfusion/internal/track"
)

// This file exposes the system-level machinery — round simulation, the
// LandShark case study, and the fault-model extensions — through the
// public facade so downstream code never imports internal packages.

// Simulation executes complete communication rounds: sensors transmit in
// schedule order over the broadcast bus, compromised sensors are placed
// by the attack strategy, and the controller fuses and runs detection.
type Simulation = sim.Simulator

// Round is the outcome of one communication round.
type Round = sim.RoundResult

// SimulationConfig assembles a Simulation.
type SimulationConfig struct {
	// Widths are the sensor interval widths, indexed by sensor.
	Widths []float64
	// F is the fusion fault bound.
	F int
	// Targets are compromised sensor indices (empty = clean system).
	Targets []int
	// Scheduler orders transmissions (see NewScheduler).
	Scheduler Scheduler
	// Strategy places attacked intervals (nil = OptimalAttacker).
	Strategy AttackStrategy
	// Step is the attacker's planning discretization (0 = default 1.0).
	Step float64
}

// NewSimulation builds a Simulation.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return sim.NewSimulator(sim.Setup{
		Widths:    cfg.Widths,
		F:         cfg.F,
		Targets:   cfg.Targets,
		Scheduler: cfg.Scheduler,
		Strategy:  cfg.Strategy,
		Step:      cfg.Step,
	})
}

// ExpectedFusionWidth enumerates every combination of sensor measurements
// on a grid of the given step (the paper's Table I methodology) and
// returns the mean fusion interval width.
func ExpectedFusionWidth(cfg SimulationConfig, step float64) (float64, error) {
	exp, err := sim.ExpectedWidth(sim.Setup{
		Widths:    cfg.Widths,
		F:         cfg.F,
		Targets:   cfg.Targets,
		Scheduler: cfg.Scheduler,
		Strategy:  cfg.Strategy,
		Step:      cfg.Step,
	}, step)
	if err != nil {
		return 0, err
	}
	return exp.Mean, nil
}

// CaseStudy is the LandShark platoon scenario of Section IV-B.
type CaseStudy = platoon.Runner

// CaseStudyParams configures a CaseStudy.
type CaseStudyParams = platoon.Params

// CaseStudyResult aggregates violation and safety counters.
type CaseStudyResult = platoon.Result

// NewCaseStudyParams returns the paper's case-study parameters (3
// vehicles, v = 10 mph, delta = 0.5 mph, LandShark sensor suite) for the
// given schedule.
func NewCaseStudyParams(kind ScheduleKind) CaseStudyParams { return platoon.NewParams(kind) }

// NewCaseStudy builds the scenario runner.
func NewCaseStudy(p CaseStudyParams, rng *rand.Rand) (*CaseStudy, error) {
	return platoon.NewRunner(p, rng)
}

// WindowDetector implements the paper's footnote-1 fault model over
// time: a sensor is deemed compromised only when flagged more than a
// threshold number of times within a sliding window of rounds.
type WindowDetector = faults.WindowDetector

// NewWindowDetector returns a windowed detector for n sensors.
func NewWindowDetector(n, window, threshold int) (*WindowDetector, error) {
	return faults.NewWindowDetector(n, window, threshold)
}

// FaultInjector produces random transient faults (the conclusion's
// proposed extension): each round each sensor independently reports an
// interval excluding the true value with the given probability.
type FaultInjector = faults.Injector

// Tracker is the bounded-dynamics interval filter: it intersects each
// round's fusion interval with a prediction propagated from the previous
// round, never losing the truth (given the rate bound) while staying at
// least as tight as raw fusion and alarming when the fault bound must
// have been violated.
type Tracker = track.Tracker

// ErrTrackInconsistent is the tracker's integrity alarm.
var ErrTrackInconsistent = track.ErrInconsistent

// NewTracker returns a Tracker for a variable whose per-round change is
// bounded by maxRate.
func NewTracker(maxRate float64) (*Tracker, error) { return track.New(maxRate) }
