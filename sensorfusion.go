package sensorfusion

import (
	"math/rand"

	"sensorfusion/internal/attack"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/interval"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sensor"
)

// Interval is a closed real interval [Lo, Hi]: the abstract-sensor
// reading containing every point that may be the true value.
type Interval = interval.Interval

// NewInterval returns the interval [lo, hi], rejecting lo > hi and
// non-finite endpoints.
func NewInterval(lo, hi float64) (Interval, error) { return interval.New(lo, hi) }

// MustInterval is like NewInterval but panics on invalid input.
func MustInterval(lo, hi float64) Interval { return interval.MustNew(lo, hi) }

// CenteredInterval returns the interval of the given width centered at c
// — the paper's construction of a sensor interval from a measurement and
// a precision guarantee (width = 2*delta).
func CenteredInterval(c, width float64) (Interval, error) { return interval.Centered(c, width) }

// Fuse computes Marzullo's fusion interval over the readings with fault
// bound f: the span from the smallest to the largest point contained in
// at least n-f intervals. The paper requires f < ceil(n/2) (see
// SafeFaultBound) for the result to be bounded and trustworthy.
func Fuse(readings []Interval, f int) (Interval, error) { return fusion.Fuse(readings, f) }

// FuseAndDetect fuses and returns the indices of readings that do not
// intersect the fusion interval — provably faulty or compromised sensors.
func FuseAndDetect(readings []Interval, f int) (Interval, []int, error) {
	return fusion.FuseAndDetect(readings, f)
}

// SafeFaultBound returns the largest fault bound the paper considers
// safe for n sensors: ceil(n/2) - 1.
func SafeFaultBound(n int) int { return fusion.SafeFaultBound(n) }

// BrooksIyengar runs the Brooks–Iyengar hybrid algorithm (the paper's
// reference [6]) returning the fused interval together with a weighted
// point estimate.
func BrooksIyengar(readings []Interval, f int) (Interval, float64, error) {
	r, err := fusion.BrooksIyengarFuse(readings, f)
	if err != nil {
		return Interval{}, 0, err
	}
	return r.Fused, r.Estimate, nil
}

// Sensor describes one abstract sensor's accuracy: the manufacturer
// precision delta plus a relative jitter term (Section II-B).
type Sensor = sensor.Spec

// GPS, Camera and Encoder return the case study's sensor models
// (interval widths 1 mph, 2 mph and 0.2 mph at the 10 mph operating
// point).
func GPS() Sensor { return sensor.GPS() }

// Camera returns the case study's camera speed estimator.
func Camera() Sensor { return sensor.Camera() }

// Encoder returns a case-study wheel encoder with the given name.
func Encoder(name string) Sensor { return sensor.Encoder(name) }

// IMU returns a trusted (hard-to-spoof) inertial sensor.
func IMU() Sensor { return sensor.IMU() }

// ScheduleKind selects a communication schedule.
type ScheduleKind = schedule.Kind

// Schedule kinds: Ascending transmits the most precise sensors first
// (the paper's recommendation), Descending the least precise first,
// Random reshuffles every round, TrustedLast puts spoof-resistant
// sensors at the end.
const (
	Ascending   = schedule.Ascending
	Descending  = schedule.Descending
	RandomOrder = schedule.Random
	TrustedLast = schedule.TrustedLast
)

// Scheduler yields per-round transmission orders.
type Scheduler = schedule.Scheduler

// NewScheduler builds a scheduler of the given kind for sensors with the
// given interval widths. trusted may be nil unless kind is TrustedLast;
// rng is required for RandomOrder.
func NewScheduler(kind ScheduleKind, widths []float64, trusted []bool, rng *rand.Rand) (Scheduler, error) {
	return schedule.ForKind(kind, widths, trusted, nil, rng)
}

// AttackStrategy plans the placements of compromised sensors' intervals.
type AttackStrategy = attack.Strategy

// OptimalAttacker returns the expectation-maximizing attacker of
// Section III (problems (1) and (2)); GreedyAttacker the cheap one-sided
// heuristic; NullAttacker always forwards correct readings.
func OptimalAttacker() AttackStrategy { return attack.NewOptimal() }

// GreedyAttacker returns the one-sided greedy heuristic attacker.
func GreedyAttacker() AttackStrategy { return attack.Greedy{} }

// NullAttacker returns the pass-through (no-op) attacker.
func NullAttacker() AttackStrategy { return attack.Null{} }
