# Build/test entry points for the sensorfusion reproduction.
#
# `make ci` is the full gate: build every package, vet, then run the
# whole suite under the race detector. The campaign engine's determinism
# and race-cleanliness are both exercised there (the equivalence tests
# run the engine with several worker counts concurrently).

GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Headline benchmarks: hot-path fusion allocs and campaign scaling.
bench:
	$(GO) test -bench 'BenchmarkFuserReuse|BenchmarkFusePerCall' -benchmem ./internal/fusion/
	$(GO) test -bench 'BenchmarkCampaignParallel' -benchtime 2x .

ci: build vet race
