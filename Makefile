# Build/test entry points for the sensorfusion reproduction.
#
# `make ci` is the full gate: build every package, gofmt + vet + the
# documentation check, run the whole suite under the race detector, then
# run every benchmark once as a smoke test. The campaign engine's determinism and race-cleanliness
# are both exercised there (the equivalence tests run the engine with
# several worker counts concurrently), and the bench smoke keeps the
# benchmark harness itself compiling and passing its embedded claim
# checks (stealth invariants, never-smaller, 0 allocs/op sinks).

GO ?= go

# The dated benchmark record bench-json writes (one file per day; CI
# overwrites the day's file rather than accumulating per-run noise).
BENCH_JSON := BENCH_$(shell date +%Y-%m-%d).json

.PHONY: all build crosscompile fmt vet docs test race bench bench-kernels benchsmoke bench-json bench-diff scenarios fuzz-short chaos chaos-short profile ci

all: build

build:
	$(GO) build ./...

# Cross-compile smoke: the batch-kernel dispatch carries amd64-only
# assembly behind build tags, so the non-amd64 fallback (and the purego
# escape hatch on amd64 itself) must keep compiling even though CI runs
# on amd64. `go vet` in this Makefile covers asmdecl on the native
# build.
crosscompile:
	GOOS=linux GOARCH=arm64 $(GO) build ./...
	$(GO) build -tags purego ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# Documentation gate: the root facade must document every exported
# identifier, and every internal/cmd package must carry a package doc
# comment (internal/doccheck implements the go/doc walk).
docs:
	$(GO) run ./internal/doccheck .
	$(GO) run ./internal/doccheck -pkgdoc $$($(GO) list -f '{{.Dir}}' ./internal/... ./cmd/...)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Headline benchmarks: hot-path fusion and results-sink allocs, campaign
# scaling.
bench:
	$(GO) test -bench 'BenchmarkFuserReuse|BenchmarkFusePerCall' -benchmem ./internal/fusion/
	$(GO) test -bench 'BenchmarkResultsSink' -benchmem ./internal/results/
	$(GO) test -bench 'BenchmarkCampaignParallel' -benchtime 2x .

# Apples-to-apples kernel comparison: the batch benchmarks under each
# forced dispatch mode (SENSORFUSION_KERNEL overrides the CPU-detected
# default at process start; unavailable kernels are skipped by the env
# hook, so the avx2 row silently equals the default on older CPUs — use
# the printed kernel-tagged rows, not the mode label, when comparing).
bench-kernels:
	@for k in generic unrolled avx2; do \
		echo "=== SENSORFUSION_KERNEL=$$k ==="; \
		SENSORFUSION_KERNEL=$$k $(GO) test -run '^$$' \
			-bench 'BenchmarkSweeperFuseBatch|BenchmarkSweeperFuseScalar' \
			-benchmem -benchtime 200ms . || exit 1; \
	done

# One iteration of every benchmark in the repo: a cheap end-to-end smoke
# of the whole experiment harness.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Record the perf trajectory: run the headline benchmarks (hot-path
# fusion, the zero-alloc round engine, the attacked-expectation search,
# sink allocs, engine batching, bounded merge) and write the test2json
# event stream to a dated BENCH_<date>.json, so successive runs leave a
# comparable record instead of scrollback. -benchmem records allocs/op,
# which bench-diff gates against growth. -benchtime 100ms keeps the
# record cheap while giving the fast benchmarks enough iterations that
# the bench-diff time gate measures code, not single-iteration warmup
# noise; for publishable numbers raise it further.
BENCH_HEADLINE := BenchmarkFuserReuse|BenchmarkResultsSink|BenchmarkCampaignParallel|BenchmarkCampaignBatched|BenchmarkBoundedMerge|BenchmarkRoundClean|BenchmarkExpectedWidthAttacked|BenchmarkSimulatedRound|BenchmarkAttackOptimal|BenchmarkSweeperFuse|BenchmarkScenarioFaultsStep

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_HEADLINE)' -benchmem -benchtime 100ms -json ./... > $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# Benchmarks whose 0 allocs/op is a documented invariant, pinned
# ABSOLUTELY in the newest record (not merely "no growth"): the
# steady-state round engine, the attacker plan search (cached and
# uncached), and the batched lane kernel (both widths). bench-diff
# fails if any of them reports a single allocation — or if the regexp
# stops matching (a rename must not unarm the pin).
BENCH_ZERO_ALLOC := BenchmarkRoundClean|BenchmarkAttackOptimalCached|BenchmarkAttackOptimalUncached|BenchmarkSweeperFuseBatch

# Compare the newest BENCH_*.json against the previous one: fail on a
# >20% geomean ns/op regression, any allocs/op growth, or any
# $(BENCH_ZERO_ALLOC) benchmark allocating at all (see
# internal/benchdiff). With fewer than two records there is nothing to
# compare; the target still succeeds (so a fresh clone's `make ci` can
# pass) but SHOUTS that the regression gate did not run — a quiet skip
# here once hid an unarmed gate for weeks. The gate arms itself once a
# second day's record exists.
bench-diff:
	@set -- $$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2); \
	if [ $$# -lt 2 ]; then \
		echo "bench-diff: *** SKIPPED *** need two BENCH_*.json records, have $$# — the perf-regression gate DID NOT RUN (run 'make bench-json' on a second day to arm it)" >&2; \
	else \
		$(GO) run ./internal/benchdiff -pin-zero-allocs '$(BENCH_ZERO_ALLOC)' "$$1" "$$2"; \
	fi

# Scenario verdict gate: run every case-study suite through the
# paper-claim verdict layer. Any FAIL verdict exits non-zero and fails
# the build; -steps 25 keeps the smoke under a second while still
# exercising every criterion (soundness, stealth, drift law, precision).
scenarios:
	$(GO) run ./cmd/repro scenarios -steps 25

# Short coverage-guided fuzzing of the three fuzz targets (scenario
# config decoder, results JSONL round-trip, batch fusion equivalence),
# each seeded from a committed corpus. 5s per target keeps CI cheap;
# raise -fuzztime for a real hunt.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeScenario$$' -fuzztime 5s ./internal/verdict/
	$(GO) test -run '^$$' -fuzz '^FuzzRecordRoundTrip$$' -fuzztime 5s ./internal/results/
	$(GO) test -run '^$$' -fuzz '^FuzzFuseBatch$$' -fuzztime 5s ./internal/fusion/

# Chaos soak: drive the coordinator through seeded deterministic fault
# schedules (torn/short writes, EIO/ENOSPC, manifest rename/fsync
# failures, killed and delayed workers, poisoned shards) and hold it to
# the harness's contracts — recoverable schedules heal to byte-identity
# with the serial run, unrecoverable ones degrade to a classified
# partial result a clean resume completes, and the same seed always
# reproduces the same outcome. 24 seeds each run twice, under the race
# detector. chaos-short is the CI arm: fewer seeds, plus the
# self-healing unit tests (classification, backoff, speculation,
# re-cut, partial) under -race.
chaos:
	CHAOS_SEEDS=24 $(GO) test ./internal/coordinator -race -run 'TestChaosSoak' -count=1

chaos-short:
	CHAOS_SEEDS=6 $(GO) test ./internal/coordinator -race -count=1 \
		-run 'TestChaosSoak|TestClassify|TestRetryDelay|TestLPTPartition|TestCoordinateSpeculation|TestCoordinateReCut|TestCoordinatePartialAndResume|TestCoordinateFollowTailsAcrossWorkerKill'

# Profile the hot path end to end: run a sampled campaign through the
# repro CLI with CPU and heap profiles enabled, then print the CPU
# top-10. Inspect interactively with `go tool pprof cpu.prof` (or
# mem.prof). PROFILE_ARGS overrides the campaign size/seed.
PROFILE_ARGS ?= -k 24 -seed 1
profile:
	$(GO) build -o repro.profile ./cmd/repro
	./repro.profile campaign $(PROFILE_ARGS) -cpuprofile cpu.prof -memprofile mem.prof >/dev/null
	$(GO) tool pprof -top -nodecount 10 cpu.prof
	@echo "profiles written: cpu.prof mem.prof (go tool pprof cpu.prof)"

ci: build crosscompile fmt vet docs race chaos-short scenarios fuzz-short benchsmoke bench-json bench-diff
