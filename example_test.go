package sensorfusion_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sensorfusion"
)

// A seeded two-configuration sample keeps the examples fast; the same
// options run the full 686-configuration campaign when SampleK is 0.
func exampleOptions() sensorfusion.CampaignOptions {
	return sensorfusion.CampaignOptions{SampleK: 2, Seed: 7, Step: 5}
}

// ExampleRunCampaign evaluates a seeded sample of the paper's Section
// IV-A campaign and checks the never-smaller observation on every row.
func ExampleRunCampaign() {
	res, err := sensorfusion.RunCampaign(exampleOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: E|S| asc=%.2f desc=%.2f\n", row.Config.Name, row.Asc, row.Desc)
	}
	fmt.Println("violations:", len(res.Violations))
	// Output:
	// n=4, fa=1, L=[11 17 17 20]: E|S| asc=11.19 desc=15.37
	// n=5, fa=1, L=[5 5 8 11 14]: E|S| asc=7.17 desc=10.10
	// violations: 0
}

// ExampleStreamCampaign streams the same sample as typed records
// through a JSONL sink — the byte-stable interchange format of the
// shard/merge/coordinate workflow.
func ExampleStreamCampaign() {
	var buf bytes.Buffer
	violations, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&buf))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("violations:", len(violations))
	fmt.Println("lines:", bytes.Count(buf.Bytes(), []byte("\n")))
	// Output:
	// violations: 0
	// lines: 2
}

// ExampleMergeRecords runs the sample as two separate shards (as two
// processes or hosts would), merges the shard streams in the wrong
// order, and recovers the exact bytes of the unsharded run.
func ExampleMergeRecords() {
	var serial bytes.Buffer
	if _, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&serial)); err != nil {
		fmt.Println(err)
		return
	}
	var shards []sensorfusion.Record
	for i := 1; i >= 0; i-- { // deliberately reversed shard order
		var buf bytes.Buffer
		opts := exampleOptions()
		opts.ShardIndex, opts.ShardCount = i, 2
		if _, err := sensorfusion.StreamCampaign(opts, sensorfusion.NewJSONLSink(&buf)); err != nil {
			fmt.Println(err)
			return
		}
		recs, err := sensorfusion.ReadRecords(&buf)
		if err != nil {
			fmt.Println(err)
			return
		}
		shards = append(shards, recs...)
	}
	var merged bytes.Buffer
	if err := sensorfusion.MergeRecords(shards, sensorfusion.NewJSONLSink(&merged), 2); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("merge equals unsharded run:", merged.String() == serial.String())
	// Output:
	// merge equals unsharded run: true
}

// ExampleCoordinate runs the sample as a resumable coordinated
// campaign: sharded across workers over a shared state directory with
// a crash-safe manifest and result cache, merged back byte-identically
// to the serial stream. (Workers run in-process here; the repro CLI's
// coordinate subcommand uses the same machinery with separate worker
// processes.)
func ExampleCoordinate() {
	dir, err := os.MkdirTemp("", "coordinate-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	var serial bytes.Buffer
	if _, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&serial)); err != nil {
		fmt.Println(err)
		return
	}
	var merged bytes.Buffer
	res, err := sensorfusion.Coordinate(sensorfusion.CoordinatorOptions{
		StateDir: filepath.Join(dir, "state"),
		Workers:  2,
		Shards:   2,
		SampleK:  2,
		Seed:     7,
		Step:     5,
	}, sensorfusion.NewJSONLSink(&merged))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("records:", res.Records, "violations:", len(res.Violations))
	fmt.Println("coordinated run equals serial run:", merged.String() == serial.String())
	// Output:
	// records: 2 violations: 0
	// coordinated run equals serial run: true
}

// ExampleUpdate edits one grid length of a completed coordinated
// campaign and recomputes incrementally: only the configurations whose
// spec digest changed are re-simulated, and the merged output is
// byte-identical to a from-scratch run of the edited spec.
func ExampleUpdate() {
	dir, err := os.MkdirTemp("", "update-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	opts := sensorfusion.CoordinatorOptions{
		StateDir: filepath.Join(dir, "state"),
		Workers:  2,
		Shards:   2,
		Seed:     7,
		Step:     5,
		Lengths:  []float64{5, 8}, // a small grid in place of the paper's
	}
	if _, err := sensorfusion.Coordinate(opts, sensorfusion.NewJSONLSink(&bytes.Buffer{})); err != nil {
		fmt.Println(err)
		return
	}

	// The spec edit: one grid length, 8 -> 9.
	opts.Lengths = []float64{5, 9}
	var fromScratch bytes.Buffer
	if _, err := sensorfusion.StreamCampaign(sensorfusion.CampaignOptions{
		Seed: 7, Step: 5, Lengths: opts.Lengths,
	}, sensorfusion.NewJSONLSink(&fromScratch)); err != nil {
		fmt.Println(err)
		return
	}
	var updated bytes.Buffer
	res, err := sensorfusion.Update(opts, sensorfusion.NewJSONLSink(&updated))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("unchanged %d of %d, re-ran %d\n", res.Unchanged, res.Total, res.Reran)
	fmt.Println("update equals from-scratch run:", updated.String() == fromScratch.String())
	// Output:
	// unchanged 4 of 21, re-ran 17
	// update equals from-scratch run: true
}

// ExampleDoctor validates a campaign state directory: a completed run
// is clean, and a stale crash leftover yields a finding with an exact
// fix command.
func ExampleDoctor() {
	dir, err := os.MkdirTemp("", "doctor-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	state := filepath.Join(dir, "state")
	if _, err := sensorfusion.Coordinate(sensorfusion.CoordinatorOptions{
		StateDir: state,
		Workers:  2,
		Shards:   2,
		SampleK:  2,
		Seed:     7,
		Step:     5,
	}, sensorfusion.NewJSONLSink(&bytes.Buffer{})); err != nil {
		fmt.Println(err)
		return
	}
	findings, err := sensorfusion.Doctor(sensorfusion.DoctorOptions{StateDir: state})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("findings on the completed run:", len(findings))

	// A lock left behind by a crashed coordinator (its pid is long gone).
	lock := filepath.Join(state, "coordinator.lock")
	if err := os.WriteFile(lock, []byte("999999999\n"), 0o644); err != nil {
		fmt.Println(err)
		return
	}
	findings, err = sensorfusion.Doctor(sensorfusion.DoctorOptions{StateDir: state})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, f := range findings {
		fmt.Println(f.Code, "-- fix:", strings.Replace(f.Fix, lock, "<lock>", 1))
	}
	// Output:
	// findings on the completed run: 0
	// stale-lock -- fix: rm <lock>
}
