package sensorfusion_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"sensorfusion"
)

// A seeded two-configuration sample keeps the examples fast; the same
// options run the full 686-configuration campaign when SampleK is 0.
func exampleOptions() sensorfusion.CampaignOptions {
	return sensorfusion.CampaignOptions{SampleK: 2, Seed: 7, Step: 5}
}

// ExampleRunCampaign evaluates a seeded sample of the paper's Section
// IV-A campaign and checks the never-smaller observation on every row.
func ExampleRunCampaign() {
	res, err := sensorfusion.RunCampaign(exampleOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: E|S| asc=%.2f desc=%.2f\n", row.Config.Name, row.Asc, row.Desc)
	}
	fmt.Println("violations:", len(res.Violations))
	// Output:
	// n=4, fa=1, L=[11 17 17 20]: E|S| asc=11.19 desc=15.37
	// n=5, fa=1, L=[5 5 8 11 14]: E|S| asc=7.17 desc=10.10
	// violations: 0
}

// ExampleStreamCampaign streams the same sample as typed records
// through a JSONL sink — the byte-stable interchange format of the
// shard/merge/coordinate workflow.
func ExampleStreamCampaign() {
	var buf bytes.Buffer
	violations, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&buf))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("violations:", len(violations))
	fmt.Println("lines:", bytes.Count(buf.Bytes(), []byte("\n")))
	// Output:
	// violations: 0
	// lines: 2
}

// ExampleMergeRecords runs the sample as two separate shards (as two
// processes or hosts would), merges the shard streams in the wrong
// order, and recovers the exact bytes of the unsharded run.
func ExampleMergeRecords() {
	var serial bytes.Buffer
	if _, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&serial)); err != nil {
		fmt.Println(err)
		return
	}
	var shards []sensorfusion.Record
	for i := 1; i >= 0; i-- { // deliberately reversed shard order
		var buf bytes.Buffer
		opts := exampleOptions()
		opts.ShardIndex, opts.ShardCount = i, 2
		if _, err := sensorfusion.StreamCampaign(opts, sensorfusion.NewJSONLSink(&buf)); err != nil {
			fmt.Println(err)
			return
		}
		recs, err := sensorfusion.ReadRecords(&buf)
		if err != nil {
			fmt.Println(err)
			return
		}
		shards = append(shards, recs...)
	}
	var merged bytes.Buffer
	if err := sensorfusion.MergeRecords(shards, sensorfusion.NewJSONLSink(&merged), 2); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("merge equals unsharded run:", merged.String() == serial.String())
	// Output:
	// merge equals unsharded run: true
}

// ExampleCoordinate runs the sample as a resumable coordinated
// campaign: sharded across workers over a shared state directory with
// a crash-safe manifest and result cache, merged back byte-identically
// to the serial stream. (Workers run in-process here; the repro CLI's
// coordinate subcommand uses the same machinery with separate worker
// processes.)
func ExampleCoordinate() {
	dir, err := os.MkdirTemp("", "coordinate-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	var serial bytes.Buffer
	if _, err := sensorfusion.StreamCampaign(exampleOptions(), sensorfusion.NewJSONLSink(&serial)); err != nil {
		fmt.Println(err)
		return
	}
	var merged bytes.Buffer
	res, err := sensorfusion.Coordinate(sensorfusion.CoordinatorOptions{
		StateDir: filepath.Join(dir, "state"),
		Workers:  2,
		Shards:   2,
		SampleK:  2,
		Seed:     7,
		Step:     5,
	}, sensorfusion.NewJSONLSink(&merged))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("records:", res.Records, "violations:", len(res.Violations))
	fmt.Println("coordinated run equals serial run:", merged.String() == serial.String())
	// Output:
	// records: 2 violations: 0
	// coordinated run equals serial run: true
}
