// Platoon: the paper's case study. Three LandShark robots hold 10 mph
// while an attacker corrupts one speed sensor per vehicle per round; the
// choice of bus schedule decides whether the fusion interval ever leaves
// the safe band [9.5, 10.5] mph.
//
//	go run ./examples/platoon [-steps 500] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"sensorfusion"
)

func main() {
	steps := flag.Int("steps", 500, "control periods to simulate per schedule")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	fmt.Println("LandShark platoon, v = 10 mph, safety band [9.5, 10.5] mph")
	fmt.Println("sensors: encoder 0.2 | encoder 0.2 | gps 1.0 | camera 2.0 (mph interval widths)")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "schedule", ">10.5 mph", "<9.5 mph", "preemptions", "detections")
	for _, kind := range []sensorfusion.ScheduleKind{
		sensorfusion.Ascending, sensorfusion.Descending, sensorfusion.RandomOrder,
	} {
		params := sensorfusion.NewCaseStudyParams(kind)
		study, err := sensorfusion.NewCaseStudy(params, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := study.Run(*steps, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %11.2f%% %11.2f%% %12d %12d\n",
			kind, 100*res.UpperRate(), 100*res.LowerRate(), res.Preemptions, res.Detections)
	}
	fmt.Println()
	fmt.Println("paper (Table II):  Ascending 0%/0%, Descending 17.42%/17.65%, Random 5.72%/5.97%")
	fmt.Println("the Ascending schedule forces compromised precise sensors to commit first,")
	fmt.Println("before they have seen any other measurement — and keeps every round safe.")
}
