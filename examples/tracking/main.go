// Tracking: blunting an attacker with physics. A vehicle's speed cannot
// jump arbitrarily between control periods, so the previous estimate
// widened by the maximum acceleration still contains the truth. The
// Tracker intersects that prediction with each round's fusion interval:
// the attacker's inflated intervals are clipped to what physics allows,
// and impossible rounds raise an integrity alarm.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sensorfusion"
)

func main() {
	widths := []float64{0.2, 0.2, 1, 2} // the LandShark suite
	f := sensorfusion.SafeFaultBound(len(widths))

	// Worst case for the system: Descending schedule, attacker on the
	// most precise sensor, transmitting last with full knowledge.
	sched, err := sensorfusion.NewScheduler(sensorfusion.Descending, widths, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	simulation, err := sensorfusion.NewSimulation(sensorfusion.SimulationConfig{
		Widths:    widths,
		F:         f,
		Targets:   []int{0},
		Scheduler: sched,
		Strategy:  sensorfusion.OptimalAttacker(),
		Step:      0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	const maxAccelPerRound = 0.05 // mph per control period
	tracker, err := sensorfusion.NewTracker(maxAccelPerRound)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	truth := 10.0
	var fusedSum, trackedSum float64
	const rounds = 400
	for round := 0; round < rounds; round++ {
		truth += (rng.Float64()*2 - 1) * maxAccelPerRound
		correct := make([]sensorfusion.Interval, len(widths))
		for k, w := range widths {
			iv, err := sensorfusion.CenteredInterval(truth+(rng.Float64()-0.5)*w, w)
			if err != nil {
				log.Fatal(err)
			}
			correct[k] = iv
		}
		res, err := simulation.Round(correct)
		if err != nil {
			log.Fatal(err)
		}
		tracked, err := tracker.Update(res.Fused)
		if err != nil {
			log.Fatalf("round %d: integrity alarm: %v", round, err)
		}
		if !tracked.Contains(truth) {
			log.Fatalf("round %d: tracker lost the truth", round)
		}
		fusedSum += res.Fused.Width()
		trackedSum += tracked.Width()
	}
	fmt.Printf("attacked fusion, %d rounds (Descending, optimal attacker on an encoder):\n\n", rounds)
	fmt.Printf("  mean fusion interval width:  %.3f mph\n", fusedSum/rounds)
	fmt.Printf("  mean tracked interval width: %.3f mph\n", trackedSum/rounds)
	fmt.Printf("  prediction clamped the fusion interval in %d of %d rounds\n",
		tracker.Clamps(), tracker.Rounds())
	fmt.Println()
	fmt.Println("the dynamics bound removes most of what the attacker gained — without")
	fmt.Println("touching the schedule, and composable with the Ascending defense.")
}
