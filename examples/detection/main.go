// Detection: transient faults vs persistent compromise. The
// instantaneous detector flags any interval missing the fusion interval;
// the windowed fault model (paper footnote 1) only convicts a sensor
// that keeps misbehaving, so a sensor with occasional glitches survives.
//
//	go run ./examples/detection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sensorfusion"
)

func main() {
	const (
		nSensors  = 5
		window    = 20
		threshold = 5 // compromised when flagged > 5 times in 20 rounds
		rounds    = 200
	)
	widths := []float64{1, 1, 2, 3, 4}
	f := sensorfusion.SafeFaultBound(nSensors) // 2

	det, err := sensorfusion.NewWindowDetector(nSensors, window, threshold)
	if err != nil {
		log.Fatal(err)
	}
	// Sensor 1 glitches 10% of the time (transient); sensor 4 is broken
	// and reports garbage 70% of the time (persistent).
	transient := sensorfusion.FaultInjector{Rate: 0.10}
	persistent := sensorfusion.FaultInjector{Rate: 0.70}

	rng := rand.New(rand.NewSource(11))
	truth := 0.0
	convictedAt := map[int]int{}
	instFlags := map[int]int{}
	for round := 0; round < rounds; round++ {
		readings := make([]sensorfusion.Interval, nSensors)
		for k, w := range widths {
			off := (rng.Float64() - 0.5) * w
			iv, err := sensorfusion.CenteredInterval(truth+off, w)
			if err != nil {
				log.Fatal(err)
			}
			readings[k] = iv
		}
		// Inject the two fault processes on their own sensors.
		if out, _, err := transient.Apply(readings[1:2], truth, nil, rng); err == nil {
			readings[1] = out[0]
		}
		if out, _, err := persistent.Apply(readings[4:5], truth, nil, rng); err == nil {
			readings[4] = out[0]
		}
		_, suspects, err := sensorfusion.FuseAndDetect(readings, f)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range suspects {
			instFlags[s]++
		}
		convicted, err := det.Record(suspects)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range convicted {
			if _, seen := convictedAt[s]; !seen {
				convictedAt[s] = round
			}
		}
	}
	fmt.Printf("after %d rounds (window %d, threshold %d):\n\n", rounds, window, threshold)
	fmt.Printf("%-8s %-12s %-16s %s\n", "sensor", "fault rate", "instant flags", "windowed verdict")
	for k := 0; k < nSensors; k++ {
		rate := "0%"
		if k == 1 {
			rate = "10% (transient)"
		}
		if k == 4 {
			rate = "70% (broken)"
		}
		verdict := "trusted"
		if at, ok := convictedAt[k]; ok {
			verdict = fmt.Sprintf("convicted at round %d", at)
		}
		fmt.Printf("%-8d %-15s %-13d %s\n", k, rate, instFlags[k], verdict)
	}
	fmt.Println()
	fmt.Println("the windowed model keeps the occasionally-glitching sensor in service")
	fmt.Println("while the persistently broken one is discarded quickly.")
}
