// Buswire: what the fusion pipeline looks like at the wire level. Sensor
// intervals are packed into CAN-style 8-byte frames (fixed-point bounds,
// CRC-8), broadcast in schedule order, decoded by the controller, and
// fused. Quantization widens each interval outward by at most 2/1024
// units, so a correct sensor stays correct across the bus — and the
// demo verifies the CRC catches corruption.
//
//	go run ./examples/buswire
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sensorfusion/internal/canbus"
	"sensorfusion/internal/fusion"
	"sensorfusion/internal/render"
	"sensorfusion/internal/schedule"
	"sensorfusion/internal/sensor"
)

func main() {
	suite := sensor.Suite(sensor.LandSharkSuite())
	rng := rand.New(rand.NewSource(5))
	const truth = 10.0 // mph

	// Measure, then order transmissions with the Ascending schedule.
	readings := suite.MeasureAll(truth, rng)
	sched, err := schedule.NewAscending(suite.Widths(truth))
	if err != nil {
		log.Fatal(err)
	}
	order := sched.Order()

	fmt.Println("slot  sensor         payload (8 bytes)          decoded interval")
	decoded := make([]struct {
		idx int
		iv  canbus.Message
	}, 0, len(order))
	for slot, idx := range order {
		payload, err := canbus.Encode(idx, uint8(slot), readings[idx])
		if err != nil {
			log.Fatal(err)
		}
		msg, err := canbus.Decode(payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-13s %x  %v\n", slot, suite[idx].Name, payload, msg.Iv)
		if !msg.Iv.ContainsInterval(readings[idx]) {
			log.Fatalf("quantization lost part of %v", readings[idx])
		}
		decoded = append(decoded, struct {
			idx int
			iv  canbus.Message
		}{idx, msg})
	}

	// The controller fuses what came off the wire.
	ivs := readings[:0:0]
	for _, d := range decoded {
		ivs = append(ivs, d.iv.Iv)
	}
	fused, err := fusion.Fuse(ivs, fusion.SafeFaultBound(len(ivs)))
	if err != nil {
		log.Fatal(err)
	}
	var diag render.Diagram
	for k, d := range decoded {
		diag.Add(suite[d.idx].Name, ivs[k], false)
	}
	diag.AddFused("fused", fused)
	fmt.Println()
	fmt.Print(diag.String())
	fmt.Printf("\nfused %v contains the true speed %.1f: %v\n", fused, truth, fused.Contains(truth))
	fmt.Printf("max quantization widening per interval: %.5f mph\n", canbus.MaxWidening())

	// A corrupted frame never sneaks through.
	payload, err := canbus.Encode(0, 0, readings[0])
	if err != nil {
		log.Fatal(err)
	}
	payload[4] ^= 0x40
	if _, err := canbus.Decode(payload); err != nil {
		fmt.Printf("\nbit-flipped frame rejected as expected: %v\n", err)
	} else {
		log.Fatal("corrupted frame was accepted")
	}
}
