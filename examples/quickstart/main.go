// Quickstart: fuse four speed readings with Marzullo's algorithm, then
// watch the detector flag a sensor whose interval cannot be telling the
// truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sensorfusion"
)

func main() {
	// A LandShark-style sensor suite reading a true speed of ~10 mph:
	// two wheel encoders (interval width 0.2 mph), a GPS (1 mph) and a
	// camera (2 mph).
	readings := []sensorfusion.Interval{
		sensorfusion.MustInterval(9.92, 10.12), // encoder-left
		sensorfusion.MustInterval(9.88, 10.08), // encoder-right
		sensorfusion.MustInterval(9.61, 10.61), // gps
		sensorfusion.MustInterval(9.48, 11.48), // camera
	}

	// The paper's safe fault bound: f < ceil(n/2), so f = 1 for n = 4.
	f := sensorfusion.SafeFaultBound(len(readings))
	fused, err := sensorfusion.Fuse(readings, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d sensors, fault bound f=%d\n", len(readings), f)
	fmt.Printf("fusion interval: %v (width %.3f)\n", fused, fused.Width())
	fmt.Printf("controller estimate: %.3f mph\n\n", fused.Center())

	// Now a compromised GPS reports a wildly wrong interval. Because it
	// no longer intersects the fusion interval, the detector names it.
	readings[2] = sensorfusion.MustInterval(14.0, 15.0)
	fused, suspects, err := sensorfusion.FuseAndDetect(readings, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after corrupting the GPS: fusion %v (width %.3f)\n", fused, fused.Width())
	fmt.Printf("detected sensors: %v (index 2 = gps)\n\n", suspects)

	// The Brooks-Iyengar variant trades the worst-case guarantee for a
	// weighted point estimate.
	readings[2] = sensorfusion.MustInterval(9.61, 10.61)
	_, estimate, err := sensorfusion.BrooksIyengar(readings, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brooks-iyengar weighted estimate: %.3f mph\n", estimate)
}
