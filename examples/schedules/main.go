// Schedules: build a custom sensor suite, compromise its most precise
// sensor, and measure how much each communication schedule concedes to
// the attacker — the Table I methodology on your own configuration.
//
//	go run ./examples/schedules
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sensorfusion"
)

func main() {
	// A hypothetical altitude-sensing suite: barometer (width 4 m),
	// radar altimeter (width 10 m), GPS vertical (width 16 m).
	widths := []float64{4, 10, 16}
	f := sensorfusion.SafeFaultBound(len(widths)) // 1
	targets := []int{0}                           // the barometer is compromised

	fmt.Println("suite widths:", widths, " fault bound f =", f, " attacked sensor: 0 (most precise)")
	fmt.Println()
	fmt.Printf("%-12s %22s\n", "schedule", "E|fusion interval|")

	rng := rand.New(rand.NewSource(7))
	for _, kind := range []sensorfusion.ScheduleKind{
		sensorfusion.Ascending, sensorfusion.Descending,
	} {
		sched, err := sensorfusion.NewScheduler(kind, widths, nil, rng)
		if err != nil {
			log.Fatal(err)
		}
		mean, err := sensorfusion.ExpectedFusionWidth(sensorfusion.SimulationConfig{
			Widths:    widths,
			F:         f,
			Targets:   targets,
			Scheduler: sched,
			Strategy:  sensorfusion.OptimalAttacker(),
			Step:      1,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %22.3f\n", kind, mean)
	}

	// Clean baseline: no attacker at all.
	sched, err := sensorfusion.NewScheduler(sensorfusion.Ascending, widths, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := sensorfusion.ExpectedFusionWidth(sensorfusion.SimulationConfig{
		Widths: widths, F: f, Scheduler: sched,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %22.3f\n", "(no attack)", clean)
	fmt.Println()
	fmt.Println("Descending lets the compromised precise sensor transmit last, with full")
	fmt.Println("knowledge of every correct interval; Ascending forces it to commit blind.")
}
